package sepdc

import (
	"fmt"
	"runtime"
	"testing"
)

// TestFlatBackendsMatchBrute is the refactor's safety net: the flat-storage
// Sphere, Hyperplane and KDTree pipelines must produce exactly the graph the
// brute-force reference produces, across dimensions, k values, and worker
// counts (the Workers=1 sequential machine and the full pool share one code
// path, so both are exercised explicitly).
func TestFlatBackendsMatchBrute(t *testing.T) {
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	if workerCounts[1] == 1 {
		workerCounts = workerCounts[:1]
	}
	for _, d := range []int{2, 3, 4} {
		for _, k := range []int{1, 4} {
			n := 500
			points := genPoints(n, d, uint64(100*d+k))
			ref, err := BuildKNNGraph(points, k, &Options{Algorithm: Brute})
			if err != nil {
				t.Fatalf("brute d=%d k=%d: %v", d, k, err)
			}
			for _, algo := range []Algorithm{Sphere, Hyperplane, KDTree} {
				for _, w := range workerCounts {
					name := fmt.Sprintf("%s/d=%d/k=%d/workers=%d", algo, d, k, w)
					t.Run(name, func(t *testing.T) {
						g, err := BuildKNNGraph(points, k, &Options{
							Algorithm: algo, Seed: 7, Workers: w,
						})
						if err != nil {
							t.Fatal(err)
						}
						if !Equal(ref, g) {
							t.Fatalf("graph differs from brute force: %s", diffGraphs(ref, g))
						}
					})
				}
			}
		}
	}
}

// diffGraphs reports the first structural difference for failure messages.
func diffGraphs(a, b *Graph) string {
	if a.NumPoints() != b.NumPoints() {
		return fmt.Sprintf("vertex counts %d vs %d", a.NumPoints(), b.NumPoints())
	}
	for v := 0; v < a.NumPoints(); v++ {
		ra, rb := a.Adjacency(v), b.Adjacency(v)
		if len(ra) != len(rb) {
			return fmt.Sprintf("vertex %d degree %d vs %d", v, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return fmt.Sprintf("vertex %d neighbor %d vs %d", v, ra[i], rb[i])
			}
		}
	}
	return "graphs equal"
}
