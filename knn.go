package sepdc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"sepdc/internal/brute"
	"sepdc/internal/chaos"
	"sepdc/internal/core"
	"sepdc/internal/kdtree"
	"sepdc/internal/knngraph"
	"sepdc/internal/obs"
	"sepdc/internal/pool"
	"sepdc/internal/pts"
	"sepdc/internal/separator"
	"sepdc/internal/topk"
	"sepdc/internal/vm"
	"sepdc/internal/xrand"
)

// Input validation errors. The library rejects malformed point sets up
// front with errors wrapping these sentinels, so callers can classify the
// rejection with errors.Is without parsing messages.
var (
	// ErrNoPoints is returned when the input holds no points.
	ErrNoPoints = errors.New("sepdc: no points")
	// ErrDimensionMismatch is returned when the rows disagree in dimension
	// or the points are zero-dimensional.
	ErrDimensionMismatch = errors.New("sepdc: dimension mismatch")
	// ErrNonFiniteCoordinate is returned when a coordinate is NaN or ±Inf.
	// Euclidean geometry (and every separator guarantee) is meaningless on
	// non-finite coordinates, so they are rejected, never silently dropped.
	ErrNonFiniteCoordinate = errors.New("sepdc: non-finite coordinate")
)

// Algorithm selects how BuildKNNGraph computes the neighbor lists. All
// algorithms return exactly the same graph (ties broken by smaller index).
type Algorithm string

const (
	// Sphere is the paper's Section-6 algorithm: sphere-separator parallel
	// divide and conquer with fast correction and punting. Random O(log n)
	// parallel time on the vector model.
	Sphere Algorithm = "sphere"
	// Hyperplane is the Section-5 baseline: median-hyperplane divide and
	// conquer with query-structure correction. Random O(log² n) time.
	Hyperplane Algorithm = "hyperplane"
	// KDTree is the sequential baseline (the role Vaidya's algorithm plays
	// in the paper): one branch-and-bound query per point.
	KDTree Algorithm = "kdtree"
	// Brute tests all pairs; the ground truth for testing.
	Brute Algorithm = "brute"
)

// Options configures BuildKNNGraph.
type Options struct {
	// Algorithm selects the implementation; default Sphere.
	Algorithm Algorithm
	// Seed drives all randomness; equal seeds give identical results.
	Seed uint64
	// Workers bounds goroutine parallelism of the divide-and-conquer
	// algorithms (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// BaseSize overrides the brute-force cutoff of the recursion
	// (0 = the paper's max(2(k+1), log₂ n)).
	BaseSize int
	// Observe enables the structured metrics layer: Stats().Report carries
	// per-phase wall times, counters, and histograms of the build. Off, the
	// instrumentation compiles down to nil-receiver no-ops.
	Observe bool
	// Trace additionally records one span per recursion-node phase for
	// Chrome trace_event export via Graph.WriteTrace. Implies Observe.
	Trace bool

	// chaos installs the deterministic fault injector (internal/chaos).
	// Unexported by design: the knob is reachable from this package's
	// tests and — for `go test`/CI runs of any consumer — via the
	// KNN_CHAOS environment spec, without widening the public API.
	// Injections reroute the build onto its punt/fallback paths; the
	// resulting graph is identical either way.
	chaos *chaos.Injector
}

// injector returns the build's fault injector: the in-package knob when
// set, else whatever the KNN_CHAOS environment spec says (usually nothing).
func (o *Options) injector() (*chaos.Injector, error) {
	if o != nil && o.chaos != nil {
		return o.chaos, nil
	}
	return chaos.FromEnv()
}

func (o *Options) algorithm() Algorithm {
	if o == nil || o.Algorithm == "" {
		return Sphere
	}
	return o.Algorithm
}

func (o *Options) seed() uint64 {
	if o == nil {
		return 1
	}
	return o.Seed
}

// Neighbor is one entry of a point's k-nearest-neighbor list.
type Neighbor struct {
	Index    int     // index of the neighboring point
	Distance float64 // Euclidean distance
}

// Stats reports what a graph construction did; fields are zero for the
// non-divide-and-conquer algorithms where they do not apply.
type Stats struct {
	// SimulatedSteps is the critical-path length in unit-time vector
	// operations on the paper's machine model ("parallel time").
	SimulatedSteps int64
	// SimulatedWork is the total element-operations ("processors × time").
	SimulatedWork int64
	// SeparatorTrials counts Unit Time Separator invocations.
	SeparatorTrials int
	// Punts counts corrections that fell back to the query structure.
	Punts int
	// FastCorrections counts marches that completed.
	FastCorrections int
	// MaxDepth is the deepest recursion node reached (root = 0) — the
	// quantity the Punting Lemma's O(log n) depth bound governs even when
	// every separator search fails to the hyperplane fallback.
	MaxDepth int
	// Report is the full observability report (per-phase wall times,
	// counters, histograms, runtime gauges); nil unless Options.Observe or
	// Options.Trace was set. Counters and Histograms are deterministic for a
	// fixed seed regardless of Workers; Phases, WallNs, and Runtime are
	// wall-clock and schedule dependent.
	Report *obs.BuildReport
}

// Graph is the k-nearest-neighbor graph of Definition 1.1: vertices are
// the input points; {i, j} is an edge when i is one of j's k nearest
// neighbors or vice versa.
type Graph struct {
	k     int
	n     int
	lists []*topk.List
	csr   *knngraph.Graph
	stats Stats
	rec   *obs.Recorder
}

// BuildKNNGraph computes the exact k-nearest-neighbor graph of the points.
// Points must be finite, share one dimension d ≥ 1, and k must be ≥ 1.
// Duplicate points are legal (they are neighbors at distance 0).
//
// The rows are flattened once into contiguous storage (package pts); every
// algorithm runs on the flat representation, so this function is a thin
// converting wrapper over the internal flat entry points.
func BuildKNNGraph(points [][]float64, k int, opts *Options) (*Graph, error) {
	return BuildKNNGraphContext(context.Background(), points, k, opts)
}

// BuildKNNGraphContext is BuildKNNGraph under a context. The Sphere and
// Hyperplane builds observe cancellation at every recursion node and at
// correction-phase boundaries, abandon the partial graph, and return
// ctx.Err() — a build punting its way down the slow correction path can be
// cancelled or deadlined promptly. The non-recursive baselines (KDTree,
// Brute) check the context only before starting.
func BuildKNNGraphContext(ctx context.Context, points [][]float64, k int, opts *Options) (*Graph, error) {
	ps, err := convert(points)
	if err != nil {
		return nil, err
	}
	return buildFromPointSet(ctx, ps, k, opts)
}

// buildFromPointSet is the flat-storage core of BuildKNNGraph, shared with
// FindGraphSeparator so a caller that already holds a PointSet does not pay
// a second [][]float64 round trip.
func buildFromPointSet(ctx context.Context, ps *pts.PointSet, k int, opts *Options) (*Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("sepdc: k must be >= 1, got %d", k)
	}
	inj, err := opts.injector()
	if err != nil {
		return nil, fmt.Errorf("sepdc: invalid chaos spec: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var rec *obs.Recorder
	if opts != nil && (opts.Observe || opts.Trace) {
		rec = obs.New(obs.Config{Trace: opts.Trace})
	}
	start := time.Now()
	var lists []*topk.List
	var st Stats
	switch algo := opts.algorithm(); algo {
	case Brute:
		lists = brute.AllKNNFlat(ps, k)
	case KDTree:
		lists = kdtree.BuildFlat(ps, kdtree.DefaultLeafSize).AllKNN(k)
	case Sphere, Hyperplane:
		cOpts := &core.Options{K: k, Rec: rec, Chaos: inj}
		workers := 0
		if opts != nil {
			cOpts.BaseSize = opts.BaseSize
			workers = opts.Workers
		}
		if inj != nil {
			// Thread the injector into the per-node separator searches
			// (and, transitively, the punt-path septree builds).
			cOpts.Sep = &separator.Options{Chaos: inj}
		}
		// Workers == 1 gets the same Machine code path as every other
		// setting (NewMachine(1) is the sequential executor), so the cost
		// accounting in Stats is produced identically regardless of the
		// parallelism setting. A chaos worker stall rides on the machine's
		// pool as a pre-task hook; the build's context cuts it short so a
		// stalled build still cancels promptly.
		if d := inj.StallDuration(); d > 0 {
			done := ctx.Done()
			cOpts.Machine = vm.NewMachineHooked(workers, func() { inj.Stall(done) })
		} else {
			cOpts.Machine = vm.NewMachine(workers)
		}
		g := xrand.New(opts.seed())
		var res *core.Result
		var err error
		if algo == Sphere {
			res, err = core.SphereDNCFlatContext(ctx, ps, g, cOpts)
		} else {
			res, err = core.HyperplaneDNCFlatContext(ctx, ps, g, cOpts)
		}
		if err != nil {
			if rec != nil {
				rec.Finish(time.Since(start))
			}
			return nil, err
		}
		lists = res.Lists
		st = Stats{
			SimulatedSteps:  res.Stats.Cost.Steps,
			SimulatedWork:   res.Stats.Cost.Work,
			SeparatorTrials: res.Stats.SeparatorTrials,
			Punts:           res.Stats.ThresholdPunts + res.Stats.MarchAborts + res.Stats.QueryCorrections,
			FastCorrections: res.Stats.FastCorrections,
			MaxDepth:        res.Stats.MaxDepth,
		}
	default:
		if rec != nil {
			rec.Finish(time.Since(start))
		}
		return nil, fmt.Errorf("sepdc: unknown algorithm %q", algo)
	}
	if rec != nil {
		st.Report = rec.Finish(time.Since(start))
	}
	return &Graph{
		k:     k,
		n:     ps.N(),
		lists: lists,
		csr:   knngraph.FromLists(lists, k),
		stats: st,
		rec:   rec,
	}, nil
}

func convert(points [][]float64) (*pts.PointSet, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	d := len(points[0])
	if d == 0 {
		return nil, fmt.Errorf("zero-dimensional points: %w", ErrDimensionMismatch)
	}
	ps := &pts.PointSet{Data: make([]float64, 0, len(points)*d), Dim: d}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("point %d has dimension %d, want %d: %w", i, len(p), d, ErrDimensionMismatch)
		}
		for c, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("point %d coordinate %d is %v: %w", i, c, x, ErrNonFiniteCoordinate)
			}
		}
		ps.Data = append(ps.Data, p...)
	}
	return ps, nil
}

// NumPoints returns the number of vertices.
func (g *Graph) NumPoints() int { return g.n }

// K returns the k the graph was built with.
func (g *Graph) K() int { return g.k }

// Stats returns construction statistics.
func (g *Graph) Stats() Stats { return g.stats }

// WriteTrace writes the build's spans as Chrome trace_event JSON, loadable
// in chrome://tracing or Perfetto. It errors unless the graph was built
// with Options.Trace.
func (g *Graph) WriteTrace(w io.Writer) error {
	if g.rec == nil {
		return errors.New("sepdc: graph was not built with Options.Trace")
	}
	return g.rec.WriteTrace(w)
}

// Neighbors returns point i's k nearest neighbors in ascending (distance,
// index) order. For point sets with at most k points the list is shorter.
func (g *Graph) Neighbors(i int) []Neighbor {
	items := g.lists[i].Items()
	out := make([]Neighbor, len(items))
	for j, nb := range items {
		out[j] = Neighbor{Index: nb.Idx, Distance: math.Sqrt(nb.Dist2)}
	}
	return out
}

// NeighborsBatch answers Neighbors for every vertex in indices in one
// call, fanning the materialization across the worker pool. A nil
// indices slice selects every vertex. Row j equals Neighbors(indices[j])
// element for element; all rows share one backing array, so a batch of m
// lookups costs two allocations instead of m. Vertices out of range are
// rejected before any work starts.
func (g *Graph) NeighborsBatch(indices []int) ([][]Neighbor, error) {
	if indices == nil {
		indices = make([]int, g.n)
		for i := range indices {
			indices[i] = i
		}
	}
	out := make([][]Neighbor, len(indices))
	if len(indices) == 0 {
		return out, nil
	}
	// Carve the per-row windows serially (prefix sums of list lengths),
	// then fill them in parallel — each row touches a disjoint window of
	// the shared backing array, so the fan-out needs no synchronization
	// beyond the range barrier.
	total := 0
	for _, i := range indices {
		if i < 0 || i >= g.n {
			return nil, fmt.Errorf("sepdc: vertex %d out of range [0,%d)", i, g.n)
		}
		total += g.lists[i].Len()
	}
	backing := make([]Neighbor, total)
	off := 0
	for j, i := range indices {
		n := g.lists[i].Len()
		out[j] = backing[off : off+n : off+n]
		off += n
	}
	pool.Shared().ParallelRange(len(indices), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := out[j]
			for m, nb := range g.lists[indices[j]].Items() {
				row[m] = Neighbor{Index: nb.Idx, Distance: math.Sqrt(nb.Dist2)}
			}
		}
	})
	return out, nil
}

// Adjacency returns the sorted undirected adjacency list of vertex i per
// Definition 1.1 (the union of in- and out-neighbors).
func (g *Graph) Adjacency(i int) []int {
	row := g.csr.Neighbors(i)
	out := make([]int, len(row))
	for j, v := range row {
		out[j] = int(v)
	}
	return out
}

// HasEdge reports whether {i, j} is an edge of the graph.
func (g *Graph) HasEdge(i, j int) bool { return g.csr.HasEdge(i, j) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.csr.NumEdges() }

// Degree returns the undirected degree of vertex i.
func (g *Graph) Degree(i int) int { return g.csr.Degree(i) }

// Components returns a component label per vertex and the component count.
func (g *Graph) Components() ([]int, int) { return g.csr.Components() }

// Equal reports whether two graphs have identical edge sets.
func Equal(a, b *Graph) bool { return knngraph.Equal(a.csr, b.csr) }
