package sepdc

import (
	"fmt"
	"sync"
	"time"

	"sepdc/internal/obs"
	"sepdc/internal/obs/flight"
	"sepdc/internal/obs/runtimeobs"
	"sepdc/internal/obs/slo"
)

// This file is the public flight-recorder knob: a declarative latency
// SLO over a Batcher's per-batch latency histogram, multi-window
// burn-rate evaluation, and automatic capture of a diagnostic bundle
// (wide-event journal, tail sampler, runtime/trace segment, CPU
// profile, runtime/metrics snapshot) the moment the burn rate trips.
// cmd/knn -flight wires it to a flag; cmd/knnserve will consume it
// wholesale.

// FlightConfig tunes a FlightRecorder. Dir is required; everything else
// defaults as noted.
type FlightConfig struct {
	// Dir is where bundles are written (one timestamped directory each).
	Dir string
	// LatencyObjective is the per-batch latency SLO threshold: a batch
	// slower than this is "bad". 0 selects 100ms. The obs histogram's
	// log2 bucketing rounds the threshold down to a power-of-two
	// nanosecond bound.
	LatencyObjective time.Duration
	// Target is the success-ratio objective over batches, e.g. 0.999.
	// 0 selects 0.99.
	Target float64
	// FastWindow/SlowWindow are the burn-rate windows. Defaults 5m / 1h.
	FastWindow, SlowWindow time.Duration
	// FastBurn/SlowBurn are the per-window trip thresholds; a capture
	// fires when BOTH windows exceed theirs. Defaults 14.4 / 6.
	FastBurn, SlowBurn float64
	// CaptureWindow is how long the bundle's runtime/trace segment and
	// CPU profile record. Default 250ms.
	CaptureWindow time.Duration
	// Cooldown is the minimum spacing between automatic captures.
	// Default 1m.
	Cooldown time.Duration
}

// FlightRecorder watches a Batcher's latency SLO and captures flight
// bundles on burn-rate trips. Construct with NewFlightRecorder, bind
// the serving side with WatchBatcher, then call Evaluate between Runs
// (the Batcher's stats are only readable between Runs, so the recorder
// never polls them behind your back). Captures run asynchronously;
// Close waits for any in flight.
type FlightRecorder struct {
	cfg FlightConfig
	rec *flight.Recorder
	rt  *runtimeobs.Sampler

	mu      sync.Mutex
	ev      *slo.Evaluator
	bundles []string
	wg      sync.WaitGroup
}

// NewFlightRecorder returns a recorder writing bundles under cfg.Dir.
func NewFlightRecorder(cfg FlightConfig) (*FlightRecorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("sepdc: FlightConfig.Dir is required")
	}
	return &FlightRecorder{
		cfg: cfg,
		rt:  runtimeobs.New(),
	}, nil
}

// WatchBatcher binds the recorder to one Batcher's telemetry: the SLO
// objective reads the Batcher's per-batch latency histogram, and a
// capture bundles the given journal and observer (either may be nil —
// the bundle just omits that evidence). name labels the sepdc_slo_*
// gauge series. Call once, before Evaluate.
func (fr *FlightRecorder) WatchBatcher(name string, bt *Batcher, qj *QueryJournal, o *ServeObserver) error {
	if fr == nil || bt == nil {
		return fmt.Errorf("sepdc: WatchBatcher needs a recorder and a Batcher")
	}
	return fr.Watch(name, func() obs.Hist { return bt.b.Stats().Latency }, qj, o, nil)
}

// Watch is the source-agnostic form of WatchBatcher: latency supplies
// the cumulative per-pass latency histogram the SLO burns against.
// Serving processes whose engines come and go — cmd/knnserve swaps
// Batchers with every snapshot generation — feed a stable process-level
// histogram here instead of binding the recorder to one Batcher's
// lifetime. The read contract is the source's own: an AtomicHist-backed
// source may be evaluated concurrently with serving, a Batcher-backed
// one only between Runs. tl, when non-nil, folds the trace log's
// retained request traces (slowest tail first) into each bundle as
// traces.jsonl — a burn-rate trip freezes the end-to-end spans of the
// slowest complete requests alongside the journal evidence. Call once,
// before Evaluate.
func (fr *FlightRecorder) Watch(name string, latency func() obs.Hist, qj *QueryJournal, o *ServeObserver, tl *TraceLog) error {
	if fr == nil || latency == nil {
		return fmt.Errorf("sepdc: Watch needs a recorder and a latency source")
	}
	threshold := fr.cfg.LatencyObjective
	if threshold <= 0 {
		threshold = 100 * time.Millisecond
	}
	src := flight.Sources{
		Runtime: fr.rt.Snapshot,
	}
	if qj != nil {
		src.Journal = qj.j
	}
	if o != nil {
		src.Serve = o.rec
	}
	if tl != nil {
		src.Traces = tl.t.Retained
	}
	rec := flight.New(flight.Config{
		Dir:      fr.cfg.Dir,
		Window:   fr.cfg.CaptureWindow,
		Cooldown: fr.cfg.Cooldown,
	}, src)
	ev, err := slo.New([]slo.Objective{{
		Name:       name,
		Source:     slo.HistSource(latency, threshold.Nanoseconds()),
		Target:     fr.cfg.Target,
		FastWindow: fr.cfg.FastWindow,
		SlowWindow: fr.cfg.SlowWindow,
		FastBurn:   fr.cfg.FastBurn,
		SlowBurn:   fr.cfg.SlowBurn,
	}}, fr.onTrip)
	if err != nil {
		return err
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.ev != nil {
		return fmt.Errorf("sepdc: FlightRecorder already watching a Batcher")
	}
	fr.rec, fr.ev = rec, ev
	return nil
}

func (fr *FlightRecorder) onTrip(s slo.Status) {
	fr.wg.Add(1)
	go func() {
		defer fr.wg.Done()
		reason := fmt.Sprintf("slo %s tripped: fast burn %.2f, slow burn %.2f (%d/%d bad)",
			s.Name, s.FastBurn, s.SlowBurn, s.Bad, s.Total)
		dir, err := fr.rec.TryCapture(reason)
		if err != nil || dir == "" {
			return
		}
		fr.mu.Lock()
		fr.bundles = append(fr.bundles, dir)
		fr.mu.Unlock()
	}()
}

// Evaluate reads the watched Batcher's counters once, updates the
// sepdc_slo_* gauges, and (asynchronously) captures a bundle if the
// burn-rate trip condition just started firing. MUST be called between
// Runs, never concurrently with one — the same contract as
// Batcher.Stats. Returns the objective's status.
func (fr *FlightRecorder) Evaluate() []slo.Status {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	ev := fr.ev
	fr.mu.Unlock()
	return ev.Evaluate()
}

// Capture writes a bundle now, regardless of SLO state — the manual
// "grab me the evidence" button. Returns the bundle directory.
func (fr *FlightRecorder) Capture(reason string) (string, error) {
	if fr == nil {
		return "", fmt.Errorf("sepdc: nil FlightRecorder")
	}
	fr.mu.Lock()
	rec := fr.rec
	fr.mu.Unlock()
	if rec == nil {
		return "", fmt.Errorf("sepdc: FlightRecorder has no watched Batcher (call WatchBatcher first)")
	}
	dir, err := rec.Capture(reason)
	if err == nil && dir != "" {
		fr.mu.Lock()
		fr.bundles = append(fr.bundles, dir)
		fr.mu.Unlock()
	}
	return dir, err
}

// Bundles returns the directories of every bundle captured so far.
func (fr *FlightRecorder) Bundles() []string {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return append([]string(nil), fr.bundles...)
}

// Close waits for any in-flight capture to finish. The recorder stays
// readable (Bundles) but should not be evaluated afterwards.
func (fr *FlightRecorder) Close() {
	if fr == nil {
		return
	}
	fr.wg.Wait()
	fr.rt.Close()
}

// CheckFlightBundle validates a captured bundle directory: metadata
// parses, the journal JSONL is well formed with the recorded event
// count, and the trace/profile evidence is present (or its absence
// explained). The flight-smoke CI job and `knn -verify-bundle` use it.
func CheckFlightBundle(dir string) error { return flight.CheckBundle(dir) }
