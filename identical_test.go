package sepdc

// Golden identical-output tests: the neighbor lists produced for fixed
// seeds are fingerprinted and compared against testdata/golden_knn.json,
// which was generated from the seed implementation ([][]float64 storage,
// per-call goroutine fan-out) before the flat-storage refactor. Any change
// that alters a single distance bit or neighbor index fails here.
//
// Regenerate (only when an intentional output change is agreed):
//
//	go test -run TestGoldenIdenticalOutput -update-golden
import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sepdc/internal/pointgen"
	"sepdc/internal/xrand"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_knn.json from the current implementation")

type goldenCase struct {
	Algo string `json:"algo"`
	N    int    `json:"n"`
	D    int    `json:"d"`
	K    int    `json:"k"`
	Seed uint64 `json:"seed"`
}

func (c goldenCase) String() string {
	return fmt.Sprintf("%s/n=%d/d=%d/k=%d/seed=%d", c.Algo, c.N, c.D, c.K, c.Seed)
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, algo := range []string{"sphere", "hyperplane", "kdtree", "brute"} {
		for _, n := range []int{512, 2048} {
			for _, d := range []int{2, 3} {
				for _, k := range []int{1, 4} {
					for _, seed := range []uint64{1, 7} {
						if algo == "brute" && n > 512 {
							continue // quadratic; one size suffices
						}
						cases = append(cases, goldenCase{Algo: algo, N: n, D: d, K: k, Seed: seed})
					}
				}
			}
		}
	}
	return cases
}

// fingerprintGraph hashes every neighbor list — indices and the exact bit
// patterns of the squared distances — into one 64-bit FNV-1a digest.
func fingerprintGraph(g *Graph) string {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < g.NumPoints(); i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		h.Write(buf[:])
		for _, nb := range g.lists[i].Items() {
			binary.LittleEndian.PutUint64(buf[:], uint64(nb.Idx))
			h.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(nb.Dist2))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func goldenInput(c goldenCase) [][]float64 {
	pts := pointgen.Dedup(pointgen.MustGenerate(pointgen.UniformCube, c.N, c.D, xrand.New(c.Seed*977+3)))
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}

func TestGoldenIdenticalOutput(t *testing.T) {
	path := filepath.Join("testdata", "golden_knn.json")
	got := make(map[string]string)
	for _, c := range goldenCases() {
		g, err := BuildKNNGraph(goldenInput(c), c.K, &Options{Algorithm: Algorithm(c.Algo), Seed: c.Seed})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		got[c.String()] = fingerprintGraph(g)
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (run with -update-golden to create): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cases, test generates %d", len(want), len(got))
	}
	for name, w := range want {
		if g, ok := got[name]; !ok {
			t.Errorf("%s: case no longer generated", name)
		} else if g != w {
			t.Errorf("%s: fingerprint %s, want %s (output diverged from seed implementation)", name, g, w)
		}
	}
}

// TestGoldenWorkersInvariant pins down that the graph does not depend on the
// worker count: the same fingerprint must come out of the sequential path
// and the fully parallel path.
func TestGoldenWorkersInvariant(t *testing.T) {
	for _, c := range []goldenCase{
		{Algo: "sphere", N: 2048, D: 2, K: 4, Seed: 1},
		{Algo: "hyperplane", N: 2048, D: 3, K: 4, Seed: 7},
	} {
		in := goldenInput(c)
		seq, err := BuildKNNGraph(in, c.K, &Options{Algorithm: Algorithm(c.Algo), Seed: c.Seed, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		par, err := BuildKNNGraph(in, c.K, &Options{Algorithm: Algorithm(c.Algo), Seed: c.Seed, Workers: 0})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if a, b := fingerprintGraph(seq), fingerprintGraph(par); a != b {
			t.Errorf("%s: Workers=1 fingerprint %s != Workers=0 fingerprint %s", c, a, b)
		}
	}
}
