package sepdc

import (
	"context"
	"fmt"

	"sepdc/internal/geom"
	"sepdc/internal/knngraph"
	"sepdc/internal/nbrsys"
	"sepdc/internal/separator"
	"sepdc/internal/xrand"
)

// GraphSeparator is a balanced vertex separator of a k-nearest-neighbor
// graph, induced by a sphere separator of the underlying points — the
// object the paper's introduction promises for "nicely embedded" graphs:
// removing W leaves no edge between the interior and exterior vertex sets.
type GraphSeparator struct {
	// Separator is the inducing sphere (or fallback hyperplane).
	Separator *SeparatorResult
	// W is the separator vertex set, ascending. |W| = O(n^{(d−1)/d}) by
	// the Sphere Separator Theorem.
	W []int
	// Interior and Exterior list the vertices on each side, excluding W.
	Interior, Exterior []int
	// CrossingEdges counts graph edges with endpoints on opposite sides;
	// every one of them has an endpoint in W.
	CrossingEdges int
}

// FindGraphSeparator computes a balanced vertex separator of the k-NN
// graph of the points. The graph itself need not be precomputed; pass the
// same k used for the graph of interest.
func FindGraphSeparator(points [][]float64, k int, seed uint64) (*GraphSeparator, error) {
	ps, err := convert(points)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("sepdc: k must be >= 1, got %d", k)
	}
	g := xrand.New(seed)
	res, err := separator.FindGoodFlat(ps, g, nil)
	if err != nil {
		return nil, err
	}
	vecs := ps.Vecs()
	sys := nbrsys.KNeighborhood(vecs, k)
	// Reuse the flat point set already built above instead of converting
	// the [][]float64 rows a second time.
	graph, err := buildFromPointSet(context.Background(), ps, k, &Options{Algorithm: KDTree})
	if err != nil {
		return nil, err
	}
	vs := knngraph.InducedVertexSeparator(graph.csr, vecs, sys, res.Sep)

	out := &GraphSeparator{
		Separator:     toSeparatorResult(res),
		W:             vs.W,
		CrossingEdges: vs.CrossingEdges,
	}
	inW := make([]bool, ps.N())
	for _, w := range vs.W {
		inW[w] = true
	}
	for i, p := range vecs {
		if inW[i] {
			continue
		}
		if res.Sep.Side(p) <= 0 {
			out.Interior = append(out.Interior, i)
		} else {
			out.Exterior = append(out.Exterior, i)
		}
	}
	return out, nil
}

// toSeparatorResult converts an internal separator result to the public
// shape (shared with FindSeparator).
func toSeparatorResult(res separator.Result) *SeparatorResult {
	out := &SeparatorResult{
		Interior: res.Stats.Interior,
		Exterior: res.Stats.Exterior,
		Ratio:    res.Stats.Ratio(),
		Trials:   res.Trials,
		Punted:   res.Punted,
	}
	switch s := res.Sep.(type) {
	case geom.Sphere:
		out.Kind = SphereSeparator
		out.Center = append([]float64(nil), s.Center...)
		out.Radius = s.Radius
	case geom.Halfspace:
		out.Kind = HyperplaneSeparator
		out.Normal = append([]float64(nil), s.Normal...)
		out.Offset = s.Offset
	}
	return out
}
