package sepdc

import (
	"context"
	"fmt"

	"sepdc/internal/nbrsys"
	"sepdc/internal/septree"
	"sepdc/internal/xrand"
)

// QueryStructure is the separator-based search structure of Section 3:
// given the k-neighborhood system of a point set, it answers "which
// points' k-neighborhood balls contain q" in O(k + log n) time with O(n)
// space.
type QueryStructure struct {
	tree *septree.Tree
	dim  int
}

// QueryStructureStats reports the built structure's shape, the quantities
// Lemma 3.1 bounds.
type QueryStructureStats struct {
	Height       int // root-to-leaf node count on the deepest path
	Leaves       int
	StoredBalls  int // Σ over leaves; O(n) by Lemma 3.1 despite duplication
	BuildTrials  int // total separator candidates consumed
	CriticalPath int // max separator trials on any root-leaf path (Thm 3.1)
	Punts        int // nodes whose separator search fell back to a hyperplane
	ForcedLeaves int // oversized leaves created after repeated no-progress
	// SimulatedSteps/SimulatedWork are the build's cost on the paper's
	// vector machine (critical path and processor-time product).
	SimulatedSteps int64
	SimulatedWork  int64
}

// NewQueryStructure builds the search structure over the k-neighborhood
// system of the points.
func NewQueryStructure(points [][]float64, k int, seed uint64) (*QueryStructure, error) {
	return NewQueryStructureContext(context.Background(), points, k, seed)
}

// NewQueryStructureContext is NewQueryStructure under a context: the
// separator-tree construction observes cancellation at every node,
// abandons the partial structure, and returns ctx.Err().
func NewQueryStructureContext(ctx context.Context, points [][]float64, k int, seed uint64) (*QueryStructure, error) {
	ps, err := convert(points)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("sepdc: k must be >= 1, got %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sys := nbrsys.KNeighborhood(ps.Vecs(), k)
	tree, err := septree.BuildContext(ctx, sys, xrand.New(seed), nil)
	if err != nil {
		return nil, err
	}
	return &QueryStructure{tree: tree, dim: ps.Dim}, nil
}

// CoveringBalls returns, in ascending order, the indices of the points
// whose k-neighborhood ball strictly contains q. By the definition of the
// k-neighborhood system, i ∈ CoveringBalls(q) means q is closer to point i
// than i's current k-th nearest neighbor — the "reverse nearest neighbor"
// relation.
func (qs *QueryStructure) CoveringBalls(q []float64) ([]int, error) {
	if len(q) != qs.dim {
		return nil, fmt.Errorf("sepdc: query dimension %d, want %d", len(q), qs.dim)
	}
	balls, _ := qs.tree.Query(q)
	return balls, nil
}

// Stats returns the structure's shape statistics.
func (qs *QueryStructure) Stats() QueryStructureStats {
	st := qs.tree.Stats
	return QueryStructureStats{
		Height:         st.Height,
		Leaves:         st.Leaves,
		StoredBalls:    st.TotalStored,
		BuildTrials:    st.SeparatorTrials,
		CriticalPath:   st.CriticalTrials,
		Punts:          st.Punts,
		ForcedLeaves:   st.ForcedLeaves,
		SimulatedSteps: st.Cost.Steps,
		SimulatedWork:  st.Cost.Work,
	}
}
