package sepdc

import (
	"context"
	"fmt"
	"math"
	"sync"

	"sepdc/internal/chaos"
	"sepdc/internal/nbrsys"
	"sepdc/internal/obs"
	"sepdc/internal/separator"
	"sepdc/internal/septree"
	"sepdc/internal/xrand"
)

// QueryStructure is the separator-based search structure of Section 3:
// given the k-neighborhood system of a point set, it answers "which
// points' k-neighborhood balls contain q" in O(k + log n) time with O(n)
// space.
//
// Queries are served from a frozen flat-array layout (children-adjacent
// nodes, CSR-packed leaf ball ids, pre-squared radii) built once at
// construction; the pointer tree is kept for statistics and validation.
// For query-heavy workloads use CoveringBallsBatch or a Batcher, which
// fan batches across the worker pool and reuse result arenas so
// steady-state serving performs zero allocations per batch.
type QueryStructure struct {
	tree   *septree.Tree
	frozen *septree.Frozen
	dim    int
	k      int

	mu    sync.Mutex // guards batch (the lazily built shared engine)
	batch *septree.Batch
}

// QueryStructureStats reports the built structure's shape, the quantities
// Lemma 3.1 bounds.
type QueryStructureStats struct {
	Height       int // root-to-leaf node count on the deepest path
	Leaves       int
	StoredBalls  int // Σ over leaves; O(n) by Lemma 3.1 despite duplication
	BuildTrials  int // total separator candidates consumed
	CriticalPath int // max separator trials on any root-leaf path (Thm 3.1)
	Punts        int // nodes whose separator search fell back to a hyperplane
	ForcedLeaves int // oversized leaves created after repeated no-progress
	// SimulatedSteps/SimulatedWork are the build's cost on the paper's
	// vector machine (critical path and processor-time product).
	SimulatedSteps int64
	SimulatedWork  int64
}

// NewQueryStructure builds the search structure over the k-neighborhood
// system of the points.
func NewQueryStructure(points [][]float64, k int, seed uint64) (*QueryStructure, error) {
	return NewQueryStructureContext(context.Background(), points, k, seed)
}

// NewQueryStructureContext is NewQueryStructure under a context: the
// separator-tree construction observes cancellation at every node,
// abandons the partial structure, and returns ctx.Err().
//
// Like BuildKNNGraph, the build honors the KNN_CHAOS environment spec:
// separator-trial fault injection reroutes construction onto its punt
// paths without changing any query answer.
func NewQueryStructureContext(ctx context.Context, points [][]float64, k int, seed uint64) (*QueryStructure, error) {
	ps, err := convert(points)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("sepdc: k must be >= 1, got %d", k)
	}
	inj, err := chaos.FromEnv()
	if err != nil {
		return nil, fmt.Errorf("sepdc: invalid chaos spec: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var opts *septree.Options
	if inj != nil {
		opts = &septree.Options{Sep: &separator.Options{Chaos: inj}}
	}
	sys := nbrsys.KNeighborhood(ps.Vecs(), k)
	tree, err := septree.BuildContext(ctx, sys, xrand.New(seed), opts)
	if err != nil {
		return nil, err
	}
	frozen, err := septree.Freeze(tree)
	if err != nil {
		return nil, err
	}
	return &QueryStructure{tree: tree, frozen: frozen, dim: ps.Dim, k: k}, nil
}

// validateQuery rejects dimension-mismatched or non-finite query
// coordinates with the library's typed sentinels — the same contract
// BuildKNNGraph enforces on its input points.
func (qs *QueryStructure) validateQuery(q []float64) error {
	if len(q) != qs.dim {
		return fmt.Errorf("sepdc: query dimension %d, want %d: %w", len(q), qs.dim, ErrDimensionMismatch)
	}
	for c, x := range q {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("sepdc: query coordinate %d is %v: %w", c, x, ErrNonFiniteCoordinate)
		}
	}
	return nil
}

// CoveringBalls returns, in ascending order, the indices of the points
// whose k-neighborhood ball strictly contains q. By the definition of the
// k-neighborhood system, i ∈ CoveringBalls(q) means q is closer to point i
// than i's current k-th nearest neighbor — the "reverse nearest neighbor"
// relation. Malformed queries are rejected with errors wrapping
// ErrDimensionMismatch or ErrNonFiniteCoordinate.
func (qs *QueryStructure) CoveringBalls(q []float64) ([]int, error) {
	if err := qs.validateQuery(q); err != nil {
		return nil, err
	}
	balls, nodes, scanned := qs.frozen.Covering(q, nil)
	if obs.On() {
		obs.Add(obs.GQueryServed, 1)
		obs.Add(obs.GQueryNodes, int64(nodes))
		obs.Add(obs.GQueryLeafScans, int64(scanned))
	}
	if len(balls) == 0 {
		return nil, nil
	}
	return balls, nil
}

// CoveringBallsBatch answers CoveringBalls for every query in one call,
// fanning the slice across the worker pool. The result rows are freshly
// allocated (safe to retain); row i equals CoveringBalls(queries[i])
// element for element. For zero-allocation steady-state serving, use a
// Batcher instead. Safe for concurrent use.
func (qs *QueryStructure) CoveringBallsBatch(queries [][]float64) ([][]int, error) {
	for i, q := range queries {
		if err := qs.validateQuery(q); err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
	}
	out := make([][]int, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if qs.batch == nil {
		qs.batch = septree.NewBatch(qs.frozen, 0)
	}
	qs.batch.Run(queries)
	total := 0
	for i := range queries {
		total += len(qs.batch.Result(i))
	}
	backing := make([]int, 0, total)
	for i := range queries {
		r := qs.batch.Result(i)
		start := len(backing)
		backing = append(backing, r...)
		out[i] = backing[start:len(backing):len(backing)]
	}
	return out, nil
}

// Batcher is a dedicated, reusable batched-query engine bound to one
// QueryStructure. Unlike CoveringBallsBatch it returns views into
// engine-owned arenas, so a warmed-up Batcher serves every subsequent
// batch with zero heap allocations. A Batcher is not safe for concurrent
// use; create one per serving goroutine (they share the same immutable
// frozen structure).
type Batcher struct {
	qs *QueryStructure
	b  *septree.Batch
}

// NewBatcher returns a Batcher with the given parallelism (0 selects
// GOMAXPROCS). Strands beyond the caller's are scheduled on the shared
// worker pool and degrade to inline execution under saturation.
//
// Like the build path, the Batcher honors the KNN_CHAOS environment
// spec: the stall clause delays each strand before every chunk of
// queries it claims, inflating per-batch latency without changing any
// answer — the lever the flight-recorder integration tests pull. An
// invalid spec is ignored here (construction already surfaces it).
func (qs *QueryStructure) NewBatcher(workers int) *Batcher {
	b := septree.NewBatch(qs.frozen, workers)
	if inj, err := chaos.FromEnv(); err == nil && inj != nil {
		b.Chaos(inj)
	}
	return &Batcher{qs: qs, b: b}
}

// SetBlockWidth sets the leaf-scan query-blocking width, clamped to
// [1, 16]. Widths above 1 let each worker bundle queries that descend to
// the same leaf and answer them with one streaming pass over the leaf's
// candidate records — a throughput win when many queries land together
// (clustered workloads, d >= 4 trees with large leaves). Answers are
// bit-identical to the unblocked engine. Width 1 (the default) restores
// per-query scanning. Not safe to call concurrently with Run.
func (bt *Batcher) SetBlockWidth(w int) { bt.b.SetBlockWidth(w) }

// Run answers an open-ball covering query for every element of queries.
// Results are read with Result and stay valid until the next Run.
func (bt *Batcher) Run(queries [][]float64) error {
	for i, q := range queries {
		if err := bt.qs.validateQuery(q); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	bt.b.Run(queries)
	return nil
}

// RunClosed is Run with closed-ball membership (a point on a ball's
// boundary counts as covered — Tree.QueryClosed semantics). The serving
// front end maps the wire format's closed flag here.
func (bt *Batcher) RunClosed(queries [][]float64) error {
	for i, q := range queries {
		if err := bt.qs.validateQuery(q); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	bt.b.RunClosed(queries)
	return nil
}

// RunTraced is Run with per-query trace contexts: traces[i] carries
// query i's request trace (zero value = untraced). Traced queries stamp
// their TraceID and a derived per-query SpanID on journal events; a
// sampled trace (client sent trace-flags 01) forces the timed
// phase-split path so the request is guaranteed an exemplar and an
// absolute-timeline journal event. traces must be nil or len(queries)
// long. Answers are bit-identical to Run.
func (bt *Batcher) RunTraced(queries [][]float64, traces []TraceContext) error {
	if traces != nil && len(traces) != len(queries) {
		return fmt.Errorf("sepdc: %d traces for %d queries", len(traces), len(queries))
	}
	for i, q := range queries {
		if err := bt.qs.validateQuery(q); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	bt.b.RunTraced(queries, traces)
	return nil
}

// RunClosedTraced is RunTraced with closed-ball membership.
func (bt *Batcher) RunClosedTraced(queries [][]float64, traces []TraceContext) error {
	if traces != nil && len(traces) != len(queries) {
		return fmt.Errorf("sepdc: %d traces for %d queries", len(traces), len(queries))
	}
	for i, q := range queries {
		if err := bt.qs.validateQuery(q); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	bt.b.RunClosedTraced(queries, traces)
	return nil
}

// Len returns the number of queries answered by the last Run.
func (bt *Batcher) Len() int { return bt.b.Len() }

// Result returns the ball indices covering query i of the last Run, in
// ascending order. The slice aliases the engine's arena: it is valid only
// until the next Run and must not be modified. Row contents are identical
// to CoveringBalls(queries[i]).
func (bt *Batcher) Result(i int) []int { return bt.b.Result(i) }

// BatchQueryStats is a Batcher's cumulative served-traffic record.
type BatchQueryStats struct {
	Batches      int64    // Run invocations
	Queries      int64    // queries answered
	NodesVisited int64    // Σ septree nodes visited
	LeafScanned  int64    // Σ leaf ball candidates scanned
	Latency      obs.Hist // per-batch wall-time histogram (nanoseconds)
}

// Stats snapshots the Batcher's cumulative counters and per-batch
// latency histogram. Call between Runs.
func (bt *Batcher) Stats() BatchQueryStats {
	st := bt.b.Stats()
	return BatchQueryStats{
		Batches:      st.Batches,
		Queries:      st.Queries,
		NodesVisited: st.NodesVisited,
		LeafScanned:  st.LeafScanned,
		Latency:      st.Latency,
	}
}

// Stats returns the structure's shape statistics.
func (qs *QueryStructure) Stats() QueryStructureStats {
	st := qs.tree.Stats
	return QueryStructureStats{
		Height:         st.Height,
		Leaves:         st.Leaves,
		StoredBalls:    st.TotalStored,
		BuildTrials:    st.SeparatorTrials,
		CriticalPath:   st.CriticalTrials,
		Punts:          st.Punts,
		ForcedLeaves:   st.ForcedLeaves,
		SimulatedSteps: st.Cost.Steps,
		SimulatedWork:  st.Cost.Work,
	}
}
