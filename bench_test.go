// Benchmarks regenerating the paper-claim experiments (one per entry in
// DESIGN.md §2). The paper has no measured tables, so each benchmark
// targets the operation whose complexity the corresponding theorem bounds;
// custom metrics report the simulated vector-model quantities next to
// wall-clock time.
//
//	go test -bench=. -benchmem
package sepdc

import (
	"fmt"
	"testing"

	"sepdc/internal/brute"
	"sepdc/internal/core"
	"sepdc/internal/kdtree"
	"sepdc/internal/march"
	"sepdc/internal/nbrsys"
	"sepdc/internal/pointgen"
	"sepdc/internal/punt"
	"sepdc/internal/separator"
	"sepdc/internal/septree"
	"sepdc/internal/vec"
	"sepdc/internal/vm"
	"sepdc/internal/xrand"
)

func benchPoints(b *testing.B, n, d int, dist pointgen.Dist) []vec.Vec {
	b.Helper()
	return pointgen.Dedup(pointgen.MustGenerate(dist, n, d, xrand.New(uint64(n*31+d))))
}

// BenchmarkSeparatorFind (E1): one Unit Time Separator search, per n and d.
func BenchmarkSeparatorFind(b *testing.B) {
	for _, d := range []int{2, 3} {
		for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
			b.Run(fmt.Sprintf("d=%d/n=%d", d, n), func(b *testing.B) {
				pts := benchPoints(b, n, d, pointgen.UniformCube)
				g := xrand.New(1)
				b.ResetTimer()
				trials := 0
				for i := 0; i < b.N; i++ {
					res, err := separator.FindGood(pts, g.Split(), nil)
					if err != nil {
						b.Fatal(err)
					}
					trials += res.Trials
				}
				b.ReportMetric(float64(trials)/float64(b.N), "trials/op")
			})
		}
	}
}

// BenchmarkQueryStructureBuild (E2/E3): constructing the Section-3 search
// structure over a k-neighborhood system.
func BenchmarkQueryStructureBuild(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := benchPoints(b, n, 2, pointgen.UniformBall)
			sys := nbrsys.KNeighborhood(pts, 2)
			g := xrand.New(2)
			b.ResetTimer()
			var steps int64
			for i := 0; i < b.N; i++ {
				tree, err := septree.Build(sys, g.Split(), nil)
				if err != nil {
					b.Fatal(err)
				}
				steps += tree.Stats.Cost.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "simSteps/op")
		})
	}
}

// BenchmarkQueryPoint (E2): one covering-balls query against the built
// structure — the O(k + log n) operation of Lemma 3.1.
func BenchmarkQueryPoint(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := benchPoints(b, n, 2, pointgen.UniformBall)
			sys := nbrsys.KNeighborhood(pts, 2)
			tree, err := septree.Build(sys, xrand.New(3), nil)
			if err != nil {
				b.Fatal(err)
			}
			g := xrand.New(4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.Query(pts[g.IntN(len(pts))])
			}
		})
	}
}

// BenchmarkPuntingTree (E4): simulating RD(n) of one probabilistic
// (0, log m)-tree.
func BenchmarkPuntingTree(b *testing.B) {
	for _, levels := range []int{10, 14} {
		b.Run(fmt.Sprintf("levels=%d", levels), func(b *testing.B) {
			g := xrand.New(5)
			spec := punt.ZeroLog()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				punt.MaxWeightedDepth(levels, spec, g)
			}
		})
	}
}

// BenchmarkCrossing (E5): counting crossing balls for a sphere separator
// versus the two hyperplane rules on the adversarial line input.
func BenchmarkCrossing(b *testing.B) {
	pts := benchPoints(b, 1<<14, 2, pointgen.LineNoise)
	sys := nbrsys.KNeighborhood(pts, 2)
	res, err := separator.FindGood(pts, xrand.New(6), nil)
	if err != nil {
		b.Fatal(err)
	}
	hyper, err := separator.FixedHyperplane(pts, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sphere", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			total = sys.IntersectionNumber(res.Sep)
		}
		b.ReportMetric(float64(total), "crossing")
	})
	b.Run("fixed-hyperplane", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			total = sys.IntersectionNumber(hyper)
		}
		b.ReportMetric(float64(total), "crossing")
	})
}

// BenchmarkSimpleDNC (E6): the Section-5 O(log² n) baseline end to end.
func BenchmarkSimpleDNC(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := benchPoints(b, n, 2, pointgen.UniformCube)
			g := xrand.New(7)
			b.ResetTimer()
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := core.HyperplaneDNC(pts, g.Split(), &core.Options{K: 1})
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Stats.Cost.Steps
			}
			b.ReportMetric(float64(steps), "simSteps")
		})
	}
}

// BenchmarkSphereDNC (E7): the Section-6 O(log n) algorithm end to end.
func BenchmarkSphereDNC(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := benchPoints(b, n, 2, pointgen.UniformCube)
			g := xrand.New(8)
			b.ResetTimer()
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := core.SphereDNC(pts, g.Split(), &core.Options{K: 1})
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Stats.Cost.Steps
			}
			b.ReportMetric(float64(steps), "simSteps")
		})
	}
}

// BenchmarkMarching (E8): one fast-correction march of k-NN-scale balls
// down a partition tree.
func BenchmarkMarching(b *testing.B) {
	pts := benchPoints(b, 1<<14, 2, pointgen.UniformCube)
	res, err := core.SphereDNC(pts, xrand.New(9), &core.Options{K: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := xrand.New(10)
	var balls []march.Ball
	for _, i := range g.Sample(len(pts), 128) {
		r2, full := res.Lists[i].Radius2()
		if full {
			balls = append(balls, march.NewBall(i, pts[i], r2))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, st := march.Down(res.Tree, pts, balls, 0, nil)
		if st.Aborted || len(hits) == 0 {
			b.Fatal("march failed")
		}
	}
}

// BenchmarkReachability (E10): the Lemma 6.3 kernel — reachable leaves of
// one ball in a partition tree.
func BenchmarkReachability(b *testing.B) {
	pts := benchPoints(b, 1<<14, 2, pointgen.UniformCube)
	res, err := core.SphereDNC(pts, xrand.New(11), &core.Options{K: 1})
	if err != nil {
		b.Fatal(err)
	}
	r2, _ := res.Lists[0].Radius2()
	ball := march.NewBall(0, pts[0], r2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if leaves := march.ReachableLeaves(res.Tree, ball); len(leaves) == 0 {
			b.Fatal("no reachable leaves")
		}
	}
}

// BenchmarkKNN (E11): the end-to-end comparison, one sub-benchmark per
// algorithm at a common size.
func BenchmarkKNN(b *testing.B) {
	const n, d, k = 1 << 13, 3, 4
	pts := benchPoints(b, n, d, pointgen.UniformCube)
	b.Run("sphere", func(b *testing.B) {
		g := xrand.New(12)
		for i := 0; i < b.N; i++ {
			if _, err := core.SphereDNC(pts, g.Split(), &core.Options{K: k, Machine: vm.NewMachine(0)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hyperplane", func(b *testing.B) {
		g := xrand.New(13)
		for i := 0; i < b.N; i++ {
			if _, err := core.HyperplaneDNC(pts, g.Split(), &core.Options{K: k, Machine: vm.NewMachine(0)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kdtree.Build(pts).AllKNN(k)
		}
	})
	b.Run("brute-n1024", func(b *testing.B) {
		small := pts[:1024]
		for i := 0; i < b.N; i++ {
			brute.AllKNN(small, k)
		}
	})
}

// BenchmarkDensityPly (E12): computing the max ply of a k-neighborhood
// system (the Density Lemma's quantity).
func BenchmarkDensityPly(b *testing.B) {
	pts := benchPoints(b, 1<<13, 2, pointgen.Clustered)
	sys := nbrsys.KNeighborhood(pts, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.MaxPlyAtCenters() == 0 {
			b.Fatal("zero ply")
		}
	}
}

// BenchmarkBuildKNNGraph is the perf-trajectory benchmark: the public entry
// point per algorithm × n × d × k. cmd/knnbench runs the same grid and
// writes the machine-readable BENCH_knn.json.
func BenchmarkBuildKNNGraph(b *testing.B) {
	for _, cfg := range []struct {
		algo    Algorithm
		n, d, k int
	}{
		{Sphere, 1 << 13, 2, 4},
		{Sphere, 10000, 2, 4},
		{Sphere, 10000, 3, 4},
		{Hyperplane, 10000, 2, 4},
		{KDTree, 10000, 2, 4},
		{Brute, 2048, 2, 4},
	} {
		b.Run(fmt.Sprintf("algo=%s/n=%d/d=%d/k=%d", cfg.algo, cfg.n, cfg.d, cfg.k), func(b *testing.B) {
			pts := benchPoints(b, cfg.n, cfg.d, pointgen.UniformCube)
			points := make([][]float64, len(pts))
			for i, p := range pts {
				points[i] = p
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BuildKNNGraph(points, cfg.k, &Options{Algorithm: cfg.algo, Seed: 42}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(points))*float64(b.N)/b.Elapsed().Seconds(), "points/sec")
		})
	}
}

// BenchmarkCoveringBalls (E13): the three covering-ball serving engines over
// one Section-3 structure — the pointer tree, the frozen flat layout, and the
// batched zero-alloc engine at 1 and 4 strands. ns/op is per query for the
// sequential modes and per full batch pass for batch-N (which also reports a
// ns/query metric). `make bench-query` runs this table; CI diffs it against
// testdata/bench-query-baseline.txt with benchstat.
func BenchmarkCoveringBalls(b *testing.B) {
	const n, d, k, nq = 10000, 2, 4, 1024
	pts := benchPoints(b, n, d, pointgen.UniformCube)
	points := make([][]float64, len(pts))
	for i, p := range pts {
		points[i] = p
	}
	qs, err := NewQueryStructure(points, k, 42)
	if err != nil {
		b.Fatal(err)
	}
	g := xrand.New(99)
	queries := make([][]float64, nq)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = points[g.IntN(len(points))]
		} else {
			queries[i] = g.InCube(d)
		}
	}
	b.Run("pointer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qs.tree.Query(vec.Vec(queries[i%nq]))
		}
	})
	b.Run("frozen", func(b *testing.B) {
		var buf []int
		for i := 0; i < b.N; i++ {
			buf, _, _ = qs.frozen.Covering(queries[i%nq], buf[:0])
		}
		_ = buf
	})
	for _, strands := range []int{1, 4} {
		b.Run(fmt.Sprintf("batch-%d", strands), func(b *testing.B) {
			bt := qs.NewBatcher(strands)
			if err := bt.Run(queries); err != nil { // warm arenas off the clock
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bt.Run(queries); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/nq, "ns/query")
		})
	}
}

// BenchmarkNeighborsBatch: the batched adjacency accessor against the
// one-vertex-at-a-time loop it replaces.
func BenchmarkNeighborsBatch(b *testing.B) {
	pts := benchPoints(b, 10000, 2, pointgen.UniformCube)
	points := make([][]float64, len(pts))
	for i, p := range pts {
		points[i] = p
	}
	g, err := BuildKNNGraph(points, 4, &Options{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for v := 0; v < g.NumPoints(); v++ {
				if len(g.Neighbors(v)) == 0 {
					b.Fatal("empty list")
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := g.NeighborsBatch(nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != g.NumPoints() {
				b.Fatal("short batch")
			}
		}
	})
}

// BenchmarkPublicAPI: the documented entry point, as a user would call it.
func BenchmarkPublicAPI(b *testing.B) {
	pts := benchPoints(b, 1<<13, 2, pointgen.UniformCube)
	points := make([][]float64, len(pts))
	for i, p := range pts {
		points[i] = p
	}
	for i := 0; i < b.N; i++ {
		if _, err := BuildKNNGraph(points, 3, &Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
