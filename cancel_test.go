package sepdc

import (
	"context"
	"errors"
	"testing"
	"time"

	"sepdc/internal/chaos"
)

// TestCancelBeforeStart: an already-cancelled context aborts every
// algorithm before any work happens.
func TestCancelBeforeStart(t *testing.T) {
	points := genPoints(100, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{Sphere, Hyperplane, KDTree, Brute} {
		if _, err := BuildKNNGraphContext(ctx, points, 2, &Options{Algorithm: algo}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", algo, err)
		}
	}
	if _, err := NewQueryStructureContext(ctx, points, 2, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("NewQueryStructureContext: err = %v, want context.Canceled", err)
	}
}

// TestCancelMidBuildPrompt is the acceptance test for prompt cancellation:
// a build held back by chaos worker stalls and forced punts (the slowest
// path the engine has) must return context.Canceled within 100ms of the
// cancel signal.
func TestCancelMidBuildPrompt(t *testing.T) {
	points := genPoints(3000, 3, 21)
	inj := &chaos.Injector{
		SepFailTrials: chaos.AllTrials,
		PuntDepths:    chaos.DepthSet{All: true},
		WorkerStall:   2 * time.Millisecond,
	}
	for _, algo := range []Algorithm{Sphere, Hyperplane} {
		t.Run(string(algo), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			type outcome struct {
				err     error
				latency time.Duration
			}
			var cancelled time.Time
			done := make(chan outcome, 1)
			go func() {
				_, err := BuildKNNGraphContext(ctx, points, 4, &Options{
					Algorithm: algo, Seed: 21, Workers: 4, chaos: inj,
				})
				done <- outcome{err: err, latency: time.Since(cancelled)}
			}()

			// Let the build get properly underway, then pull the plug.
			time.Sleep(20 * time.Millisecond)
			cancelled = time.Now()
			cancel()

			select {
			case out := <-done:
				if !errors.Is(out.err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", out.err)
				}
				if out.latency > 100*time.Millisecond {
					t.Fatalf("build took %v after cancel, want <= 100ms", out.latency)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("build did not return within 5s of cancellation")
			}
		})
	}
}

// TestCancelDeadline: a context deadline surfaces as DeadlineExceeded from
// a chaos-slowed build.
func TestCancelDeadline(t *testing.T) {
	points := genPoints(3000, 3, 23)
	inj := &chaos.Injector{
		SepFailTrials: chaos.AllTrials,
		PuntDepths:    chaos.DepthSet{All: true},
		WorkerStall:   2 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err := BuildKNNGraphContext(ctx, points, 4, &Options{
		Algorithm: Sphere, Seed: 23, Workers: 4, chaos: inj,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestContextBuildMatchesPlainBuild: threading a live context through the
// build changes nothing about the result.
func TestContextBuildMatchesPlainBuild(t *testing.T) {
	points := genPoints(300, 2, 5)
	for _, algo := range []Algorithm{Sphere, Hyperplane} {
		plain, err := BuildKNNGraph(points, 3, &Options{Algorithm: algo, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := BuildKNNGraphContext(context.Background(), points, 3, &Options{Algorithm: algo, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(plain, ctxed) {
			t.Fatalf("%s: context build differs from plain build", algo)
		}
	}
}

// TestQueryStructureContextCancel: the query-side structure build observes
// cancellation too (it is the punt path's inner engine, so this also
// pins down the behavior queryCorrect depends on).
func TestQueryStructureContextCancel(t *testing.T) {
	points := genPoints(2000, 3, 31)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := NewQueryStructureContext(ctx, points, 4, 31)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("build did not return within 5s of cancellation")
	}

	// And a pre-cancelled context never builds at all.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := NewQueryStructureContext(pre, points, 4, 31); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
}
