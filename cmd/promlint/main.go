// Command promlint validates a Prometheus text exposition (format
// 0.0.4) read from stdin or a file, and optionally asserts that gauge
// values fall in a range:
//
//	curl -s http://127.0.0.1:8080/metrics | promlint
//	promlint -gauge 'sepdc_audit_pass:1:1' metrics.txt
//	promlint -gauge 'sepdc_audit_iota_ratio:0:1' -gauge 'sepdc_audit_pass:1:1' metrics.txt
//	promlint -prev scrape1.txt scrape2.txt
//	promlint -exemplar sepdc_serve_serve0_latency_ns metrics.txt
//
// Every series of an asserted family must exist and lie within
// [min, max]; otherwise promlint prints the violation and exits 1.
// With -prev, counter series (including histogram buckets/counts) must
// not decrease from the previous scrape to the current one. With
// -exemplar, at least one series of the named family (its _bucket
// series for a histogram) must carry an OpenMetrics exemplar — the lint
// pass has already validated exemplar placement, label syntax, and the
// 128-rune budget by then. CI uses promlint to gate the /metrics scrape
// of cmd/knn -audit and the traced scrape of the serve smoke test.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sepdc/internal/obs/promtext"
)

// gaugeCheck is one -gauge name:min:max assertion.
type gaugeCheck struct {
	name     string
	min, max float64
}

// gaugeFlags collects repeated -gauge values.
type gaugeFlags []gaugeCheck

func (g *gaugeFlags) String() string {
	parts := make([]string, len(*g))
	for i, c := range *g {
		parts[i] = fmt.Sprintf("%s:%g:%g", c.name, c.min, c.max)
	}
	return strings.Join(parts, ",")
}

func (g *gaugeFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want name:min:max, got %q", v)
	}
	lo, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad min in %q: %w", v, err)
	}
	hi, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("bad max in %q: %w", v, err)
	}
	if parts[0] == "" || lo > hi {
		return fmt.Errorf("bad assertion %q", v)
	}
	*g = append(*g, gaugeCheck{name: parts[0], min: lo, max: hi})
	return nil
}

// stringList collects repeated string flag values (-exemplar).
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty family name")
	}
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run() error {
	var checks gaugeFlags
	flag.Var(&checks, "gauge", "assert every series of a family is in range, as name:min:max (repeatable)")
	var exemplars stringList
	flag.Var(&exemplars, "exemplar", "assert at least one series of this family carries an exemplar (repeatable)")
	quiet := flag.Bool("q", false, "suppress the summary line")
	prevPath := flag.String("prev", "", "earlier scrape of the same target; counters must not decrease from it")
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 1 {
		return fmt.Errorf("at most one input file, got %d", flag.NArg())
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	}

	exp, err := promtext.Lint(in)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}

	if *prevPath != "" {
		f, err := os.Open(*prevPath)
		if err != nil {
			return err
		}
		prev, err := promtext.Lint(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *prevPath, err)
		}
		if err := exp.CounterMonotonic(prev); err != nil {
			return fmt.Errorf("%s vs %s: %w", src, *prevPath, err)
		}
	}

	violations := 0
	for _, c := range checks {
		series := exp.Find(c.name)
		if len(series) == 0 {
			fmt.Fprintf(os.Stderr, "promlint: %s: no series for asserted family %s\n", src, c.name)
			violations++
			continue
		}
		for _, s := range series {
			if s.Value < c.min || s.Value > c.max {
				fmt.Fprintf(os.Stderr, "promlint: %s: %s%s = %g outside [%g, %g]\n",
					src, s.Name, labelString(s.Labels), s.Value, c.min, c.max)
				violations++
			}
		}
	}
	for _, name := range exemplars {
		found := false
		for i := range exp.Series {
			s := &exp.Series[i]
			if (s.Name == name || s.Name == name+"_bucket") && s.Exemplar != nil {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "promlint: %s: no exemplar on any series of family %s\n", src, name)
			violations++
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d assertion(s) failed", violations)
	}
	if !*quiet {
		fmt.Printf("promlint: %s: %d series in %d families ok (%d assertions)\n",
			src, len(exp.Series), len(exp.Types), len(checks)+len(exemplars))
	}
	return nil
}

func labelString(labels []promtext.Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
