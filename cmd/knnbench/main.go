// Command knnbench runs the BuildKNNGraph benchmark grid (the same
// algorithm × n × d × k grid as BenchmarkBuildKNNGraph in bench_test.go)
// and writes a machine-readable BENCH_knn.json next to the repo root.
//
// The emitted file also carries the recorded baseline of the pre-flat-storage
// seed (commit 267ddc0), measured back-to-back with the current code on the
// same machine, so the performance claim is auditable:
//
//	go run ./cmd/knnbench -out BENCH_knn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"sepdc"
	"sepdc/internal/obs"
	"sepdc/internal/pointgen"
	"sepdc/internal/xrand"
)

// Result is one grid cell's measurement. Observed is filled from one extra
// non-timed instrumented run for the divide-and-conquer algorithms: per-
// phase wall times (divide/recurse/correct/base), the deterministic trial/
// punt counters, and the march/crossing-ball histograms.
type Result struct {
	Algorithm    string           `json:"algorithm"`
	Procs        int              `json:"procs"` // GOMAXPROCS and Options.Workers for the run
	N            int              `json:"n"`
	D            int              `json:"d"`
	K            int              `json:"k"`
	Iterations   int              `json:"iterations"`
	NsPerOp      int64            `json:"ns_per_op"`
	AllocsPerOp  int64            `json:"allocs_per_op"`
	BytesPerOp   int64            `json:"bytes_per_op"`
	PointsPerSec float64          `json:"points_per_sec"`
	Observed     *obs.BuildReport `json:"observed,omitempty"`
}

// Env records the machine and build the numbers were taken on.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUModel   string `json:"cpu_model,omitempty"`
	GitCommit  string `json:"git_commit,omitempty"`
	// CPUFeatures and KernelTier pin which distance-kernel dispatch the
	// numbers were taken under: the detected vector features
	// ("avx,avx2,fma,..." or "none") and the tier the process resolved
	// ("asm", "unrolled", or "generic" — KNN_KERNELS overrides).
	CPUFeatures string `json:"cpu_features,omitempty"`
	KernelTier  string `json:"kernel_tier,omitempty"`
}

// Report is the whole BENCH_knn.json document.
type Report struct {
	Generated  string         `json:"generated"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Env        Env            `json:"env"`
	Note       string         `json:"note"`
	Baseline   []Result       `json:"baseline"`
	Results    []Result       `json:"results"`
	Query      []QueryResult  `json:"query,omitempty"`
	Obs        []ObsOverhead  `json:"obs_overhead,omitempty"`
	Journal    *JournalBench  `json:"journal,omitempty"`
	Kernels    []KernelResult `json:"kernels,omitempty"`
	Layout     []LayoutResult `json:"layout,omitempty"`
}

// captureEnv gathers the environment header: toolchain, CPU shape, the CPU
// model from /proc/cpuinfo (Linux; absent elsewhere), and the git commit
// from build info (module builds) or the working tree (go run).
func captureEnv() Env {
	env := Env{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
				env.CPUModel = strings.TrimSpace(val)
				break
			}
		}
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				env.GitCommit = s.Value
				break
			}
		}
	}
	if env.GitCommit == "" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			env.GitCommit = strings.TrimSpace(string(out))
		}
	}
	env.KernelTier, env.CPUFeatures = sepdc.KernelInfo()
	return env
}

// baseline holds the seed measurements (commit 267ddc0, `go test -bench
// 'BuildKNNGraph/algo=sphere/n=10000/d=2/k=4' -benchtime 15x`) taken in the
// same session as the current-code numbers recorded in Results. They are
// static by design: the seed tree no longer exists in the working copy.
var baseline = []Result{
	{Algorithm: "sphere", Procs: 1, N: 10000, D: 2, K: 4, Iterations: 15,
		NsPerOp: 119861240, AllocsPerOp: 1224674, BytesPerOp: 73158294, PointsPerSec: 83430},
	{Algorithm: "kdtree", Procs: 1, N: 10000, D: 2, K: 4, Iterations: 10,
		NsPerOp: 28914015, AllocsPerOp: 92500, BytesPerOp: 14748935, PointsPerSec: 345853},
}

type cfg struct {
	algo    sepdc.Algorithm
	n, d, k int
}

var grid = []cfg{
	{sepdc.Sphere, 1 << 13, 2, 4},
	{sepdc.Sphere, 10000, 2, 4},
	{sepdc.Sphere, 10000, 3, 4},
	{sepdc.Hyperplane, 10000, 2, 4},
	{sepdc.KDTree, 10000, 2, 4},
	{sepdc.Brute, 2048, 2, 4},
}

func measure(c cfg, iters, procs int) (Result, error) {
	// Same generator and seed recipe as bench_test.go, so `go test -bench
	// BuildKNNGraph` and knnbench report the same workload.
	pts := pointgen.Dedup(pointgen.MustGenerate(pointgen.UniformCube, c.n, c.d, xrand.New(uint64(c.n*31+c.d))))
	points := make([][]float64, len(pts))
	for i, p := range pts {
		points[i] = p
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	opts := &sepdc.Options{Algorithm: c.algo, Seed: 42, Workers: procs}
	run := func() error {
		_, err := sepdc.BuildKNNGraph(points, c.k, opts)
		return err
	}
	// Warm up pools and the allocator once before measuring.
	if err := run(); err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := run(); err != nil {
			return Result{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	res := Result{
		Algorithm:    string(c.algo),
		Procs:        procs,
		N:            len(points),
		D:            c.d,
		K:            c.k,
		Iterations:   iters,
		NsPerOp:      elapsed.Nanoseconds() / int64(iters),
		AllocsPerOp:  int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:   int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		PointsPerSec: float64(len(points)) * float64(iters) / elapsed.Seconds(),
	}
	// One extra observed (non-timed) run for the divide-and-conquer
	// algorithms: per-phase wall times and the paper-quantity counters and
	// histograms, kept out of the measured loop so the instrumentation
	// cannot color the ns/op numbers.
	if c.algo == sepdc.Sphere || c.algo == sepdc.Hyperplane {
		obsOpts := *opts
		obsOpts.Observe = true
		g, err := sepdc.BuildKNNGraph(points, c.k, &obsOpts)
		if err != nil {
			return Result{}, err
		}
		res.Observed = g.Stats().Report
	}
	return res, nil
}

// remeasureObs re-runs only the obs_overhead and journal sections and
// merges them into the existing report at path, preserving every other
// section verbatim. The section notes record the partial regeneration.
func remeasureObs(path string, queries, queryIters int) error {
	if path == "-" {
		return fmt.Errorf("-only obs needs a real -out file to merge into")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read existing report: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parse existing report %s: %w", path, err)
	}
	or, err := runObsBench(queries, queryIters)
	if err != nil {
		return fmt.Errorf("obs bench: %w", err)
	}
	jb, err := runJournalBench(queries, 50)
	if err != nil {
		return fmt.Errorf("journal bench: %w", err)
	}
	rep.Obs = or
	rep.Journal = jb
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	if !strings.Contains(rep.Note, "obs_overhead+journal remeasured") {
		rep.Note += "; obs_overhead+journal remeasured via -only obs (other sections predate it)"
	}
	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// remeasureKernels re-runs only the dims-driven sections — kernels and
// layout — and merges them into the existing report at path, refreshing
// the env header (the kernel columns are meaningless without knowing
// which tier and CPU produced them). Every other section is preserved
// verbatim.
func remeasureKernels(path string, dims []int) error {
	if path == "-" {
		return fmt.Errorf("-only kernels needs a real -out file to merge into")
	}
	if len(dims) == 0 {
		return fmt.Errorf("-only kernels with the sections disabled (-dims 0) measures nothing")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read existing report: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parse existing report %s: %w", path, err)
	}
	rep.Kernels = runKernelBench(dims)
	lr, err := runLayoutBench(dims, 2048, 25)
	if err != nil {
		return fmt.Errorf("layout bench: %w", err)
	}
	rep.Layout = lr
	rep.Env = captureEnv()
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	if !strings.Contains(rep.Note, "kernels+layout remeasured") {
		rep.Note += "; kernels+layout remeasured via -only kernels (other sections predate it)"
	}
	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

func main() {
	out := flag.String("out", "BENCH_knn.json", "output file (- for stdout)")
	iters := flag.Int("iters", 15, "measured iterations per grid cell")
	queries := flag.Int("queries", 4096, "queries per serving-benchmark pass (0 disables the query section)")
	queryIters := flag.Int("query-iters", 20, "measured passes per query-serving cell")
	procsFlag := flag.String("procs", "", "comma-separated GOMAXPROCS sweep for the build grid and batch strands (default \"1,4,NumCPU\" deduplicated)")
	dimsFlag := flag.String("dims", "", "comma-separated dimension sweep for the kernels/layout sections (default \"2,3,4,5,6,7,8\"; empty string keeps the default, \"0\" disables the sections)")
	only := flag.String("only", "", "re-measure only the named section and merge into the existing -out file (\"obs\" = obs_overhead + journal, \"kernels\" = kernels + layout); other sections are preserved verbatim")
	flag.Parse()

	procs, err := parseProcs(*procsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnbench:", err)
		os.Exit(1)
	}
	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnbench:", err)
		os.Exit(1)
	}

	// Merge mode: re-measure one section against the committed record
	// without paying for a full-grid regeneration (hours on small hosts).
	if *only != "" {
		var err error
		switch *only {
		case "obs":
			err = remeasureObs(*out, *queries, *queryIters)
		case "kernels":
			err = remeasureKernels(*out, dims)
		default:
			err = fmt.Errorf("unknown -only section %q (want \"obs\" or \"kernels\")", *only)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "knnbench:", err)
			os.Exit(1)
		}
		return
	}

	rep := Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Env:        captureEnv(),
		Note: "baseline = seed commit 267ddc0 (pre flat-storage), measured back-to-back " +
			"with results on the same machine; grid matches BenchmarkBuildKNNGraph, each " +
			"cell swept over -procs (GOMAXPROCS + Options.Workers pinned together); " +
			"observed = one extra instrumented (Observe: true) run per DNC cell, not timed; " +
			"query = covering-ball serving over one structure per cell — pointer vs frozen " +
			"sequential, batch engine swept over procs 1/4/NumCPU with GOMAXPROCS pinned; " +
			"query ns/query and qps are the fastest of query-iters identically-sized timed " +
			"passes taken round-robin across modes (interleaved minimum: noise-robust on " +
			"shared hosts and immune to multi-second skew, same work per pass in every mode); " +
			"obs_overhead = the same interleaved-minimum protocol comparing a nil-observer " +
			"batch engine against one feeding a ServeRecorder at the production sampling " +
			"default and one additionally publishing every query to the wide-event journal, " +
			"on the largest query cells (acceptance budget: <=5% throughput, 0 allocs); " +
			"journal = drain throughput with a concurrent consumer and ring-overwrite rate " +
			"with none, over a deliberately small 1024-event ring; " +
			"kernels = per-dimension distance-kernel micro-bench (generic fallback vs unrolled vs " +
			"four-point vs the AVX2 assembly batch forms where the CPU supports them, each captured " +
			"under an explicitly pinned dispatch tier, interleaved minimum over identical operand " +
			"streams; asm_speedup is best-asm-form vs the unrolled four-point kernel); layout = whole-path " +
			"serving per dimension over a correlated query stream (runs of 8 jittered queries per " +
			"anchor — the shape the correction's QueryBatchClosed and clustered external traffic " +
			"produce), ref (breadth-first layout + generic kernels + per-query scans and descents, " +
			"the PR-5 configuration) vs opt (pair-blocked layout + specialized kernels/descents + " +
			"query-blocked scans at block_width, 1 at d<=3 where the inline whole-path scans already " +
			"win), answers cross-checked identical before timing, phase means from " +
			"non-timed instrumented passes",
	}
	rep.Baseline = baseline
	for _, c := range grid {
		for _, p := range procs {
			r, err := measure(c, *iters, p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "knnbench: %s n=%d d=%d k=%d procs=%d: %v\n", c.algo, c.n, c.d, c.k, p, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "%-10s procs=%-2d n=%-6d d=%d k=%d  %12d ns/op  %9d allocs/op  %9.0f points/sec\n",
				r.Algorithm, r.Procs, r.N, r.D, r.K, r.NsPerOp, r.AllocsPerOp, r.PointsPerSec)
			rep.Results = append(rep.Results, r)
		}
	}
	if *queries > 0 {
		qr, err := runQueryBench(*queries, *queryIters, procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "knnbench: query bench:", err)
			os.Exit(1)
		}
		rep.Query = qr
		or, err := runObsBench(*queries, *queryIters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "knnbench: obs bench:", err)
			os.Exit(1)
		}
		rep.Obs = or
		jb, err := runJournalBench(*queries, 50)
		if err != nil {
			fmt.Fprintln(os.Stderr, "knnbench: journal bench:", err)
			os.Exit(1)
		}
		rep.Journal = jb
	}
	if len(dims) > 0 {
		rep.Kernels = runKernelBench(dims)
		lr, err := runLayoutBench(dims, 2048, 25)
		if err != nil {
			fmt.Fprintln(os.Stderr, "knnbench: layout bench:", err)
			os.Exit(1)
		}
		rep.Layout = lr
	}
	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "knnbench:", err)
		os.Exit(1)
	}
}
