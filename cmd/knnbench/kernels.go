package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sepdc/internal/nbrsys"
	"sepdc/internal/obs"
	"sepdc/internal/pointgen"
	"sepdc/internal/septree"
	"sepdc/internal/vec"
	"sepdc/internal/xrand"
)

// KernelResult is one dimension's distance-kernel micro-measurement:
// the generic fallback (Dist2Flat through an indirect call — the path
// every d >= 4 call site ran before the dispatch table was widened),
// the unrolled single-pair kernel, the unrolled four-point kernel, and
// (on CPUs with the assembly tier) the AVX2 batch forms, all on the
// same operand stream. Batch columns are normalized per distance (one
// call produces four or eight).
type KernelResult struct {
	D               int     `json:"d"`
	GenericNs       float64 `json:"generic_ns_per_dist"`
	UnrolledNs      float64 `json:"unrolled_ns_per_dist"`
	Batch4Ns        float64 `json:"batch4_ns_per_dist"`
	UnrolledSpeedup float64 `json:"unrolled_speedup"`
	Batch4Speedup   float64 `json:"batch4_speedup"`
	// The assembly tier's three batch forms (d = 2..8, AVX2 hosts
	// only): the four-lane form, the eight-lane pointer-vector form the
	// query-blocked scan feeds, and the eight-record strided form the
	// sequential leaf scan feeds. AsmNs is the best of the three;
	// AsmSpeedup compares it against Batch4Ns — the PR-6 unrolled batch
	// kernel, i.e. the previous best per-distance path.
	AsmBatch4Ns   float64 `json:"asm_batch4_ns_per_dist,omitempty"`
	AsmBatch8Ns   float64 `json:"asm_batch8_ns_per_dist,omitempty"`
	AsmStrided8Ns float64 `json:"asm_strided8_ns_per_dist,omitempty"`
	AsmNs         float64 `json:"asm_ns_per_dist,omitempty"`
	AsmSpeedup    float64 `json:"asm_speedup,omitempty"`
}

// LayoutResult is one dimension's whole-path serving comparison:
// ref = the PR-5 configuration (breadth-first node layout, generic
// kernels, per-query leaf scans) against opt = this PR's configuration
// (pair-blocked layout, unrolled + four-point kernels, query-blocked
// leaf scans), both through the batch engine on one strand so the
// numbers isolate layout + kernels rather than scheduling. Descent and
// scan phase means come from one extra non-timed instrumented pass per
// mode (ServeRecorder timing every query), phase-split exactly like the
// production telemetry.
type LayoutResult struct {
	D             int     `json:"d"`
	N             int     `json:"n"`
	K             int     `json:"k"`
	NumQueries    int     `json:"num_queries"`
	Iterations    int     `json:"iterations"`
	BlockWidth    int     `json:"block_width"`
	RefNsPerQuery int64   `json:"ref_ns_per_query"`
	OptNsPerQuery int64   `json:"opt_ns_per_query"`
	RefQPS        float64 `json:"ref_qps"`
	OptQPS        float64 `json:"opt_qps"`
	Speedup       float64 `json:"speedup"`
	RefDescentNs  float64 `json:"ref_descent_ns_mean"`
	OptDescentNs  float64 `json:"opt_descent_ns_mean"`
	RefScanNs     float64 `json:"ref_scan_ns_mean"`
	OptScanNs     float64 `json:"opt_scan_ns_mean"`
}

// parseDims turns the -dims flag into the dimension sweep, defaulting
// to the full dispatch-table range 2..8.
func parseDims(spec string) ([]int, error) {
	if spec == "" {
		return []int{2, 3, 4, 5, 6, 7, 8}, nil
	}
	if spec == "0" {
		return nil, nil // sections disabled
	}
	var dims []int
	for _, field := range strings.Split(spec, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad -dims entry %q", field)
		}
		dims = append(dims, d)
	}
	return dims, nil
}

// kernelPoints builds a deterministic operand table sized to defeat the
// L1 — the kernels are measured with realistic cache pressure, not out
// of registers.
func kernelPoints(d, n int) [][]float64 {
	pts := make([][]float64, n)
	state := uint64(7 + d)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			state = state*6364136223846793005 + 1442695040888963407
			p[j] = float64(state>>11) / float64(1<<53)
		}
		pts[i] = p
	}
	return pts
}

// runKernelBench measures the kernel forms per dimension with the same
// interleaved-minimum protocol as the serving benchmarks: rounds of
// (generic, unrolled, batch4, asm forms) passes over one operand
// table, each form keeping its fastest pass. The unrolled and asm
// kernels are captured under explicitly pinned dispatch tiers so the
// columns measure what they claim regardless of KNN_KERNELS or the
// default tier.
func runKernelBench(dims []int) []KernelResult {
	const (
		tablePts  = 512
		passDists = 1 << 20
		rounds    = 7
	)
	var out []KernelResult
	sink := 0.0
	for _, d := range dims {
		pts := kernelPoints(d, tablePts)
		// The strided table mirrors the frozen leaf records: stride d+1
		// (center ‖ r²), one record per table point.
		stride := d + 1
		recs := make([]float64, tablePts*stride)
		for i, p := range pts {
			copy(recs[i*stride:], p)
			recs[i*stride+d] = 1.0
		}
		generic := vec.Dist2Func(vec.Dist2Flat)
		prev := vec.SetActiveTier(vec.TierUnrolled)
		unrolled := vec.Dist2Kernel(d)
		batch4 := vec.Dist2Batch4Kernel(d)
		var asmB4 vec.Dist2Batch4Func
		var asmB8 vec.Dist2Batch8Func
		var asmS8 vec.Dist2Strided8Func
		if vec.SetActiveTier(vec.TierAsm); vec.ActiveTier() == vec.TierAsm {
			asmB8 = vec.Dist2Batch8Kernel(d)
			asmS8 = vec.Dist2Strided8Kernel(d)
			if asmB8 != nil { // asm covers d = 2..8; outside, all forms are nil
				asmB4 = vec.Dist2Batch4Kernel(d)
			}
		}
		vec.SetActiveTier(prev)
		pass1 := func(kern vec.Dist2Func) time.Duration {
			start := time.Now()
			for i := 0; i < passDists; i++ {
				sink += kern(pts[i&(tablePts-1)], pts[(i+1)&(tablePts-1)])
			}
			return time.Since(start)
		}
		pass4 := func(kern vec.Dist2Batch4Func) time.Duration {
			start := time.Now()
			for i := 0; i < passDists/4; i++ {
				da, db, dc, dd := kern(pts[i&(tablePts-1)], pts[(i+1)&(tablePts-1)],
					pts[(i+2)&(tablePts-1)], pts[(i+3)&(tablePts-1)], pts[(i+4)&(tablePts-1)])
				sink += da + db + dc + dd
			}
			return time.Since(start)
		}
		pass8 := func() time.Duration {
			start := time.Now()
			for i := 0; i < passDists/8; i++ {
				r := i & (tablePts - 9)
				d0, d1, d2, d3, d4, d5, d6, d7 := asmB8(pts[r], pts[r+1:])
				sink += d0 + d1 + d2 + d3 + d4 + d5 + d6 + d7
			}
			return time.Since(start)
		}
		passS8 := func() time.Duration {
			start := time.Now()
			for i := 0; i < passDists/8; i++ {
				r := i & (tablePts - 9)
				d0, d1, d2, d3, d4, d5, d6, d7 := asmS8(pts[r], recs[r*stride:], stride)
				sink += d0 + d1 + d2 + d3 + d4 + d5 + d6 + d7
			}
			return time.Since(start)
		}
		// One named pass per form; absent asm forms simply don't run.
		type form struct {
			run  func() time.Duration
			best time.Duration
		}
		forms := []*form{
			{run: func() time.Duration { return pass1(generic) }},
			{run: func() time.Duration { return pass1(unrolled) }},
			{run: func() time.Duration { return pass4(batch4) }},
		}
		const iGeneric, iUnrolled, iBatch4 = 0, 1, 2
		iAsmB4, iAsmB8, iAsmS8 := -1, -1, -1
		if asmB4 != nil {
			iAsmB4 = len(forms)
			forms = append(forms, &form{run: func() time.Duration { return pass4(asmB4) }})
			iAsmB8 = len(forms)
			forms = append(forms, &form{run: pass8})
			iAsmS8 = len(forms)
			forms = append(forms, &form{run: passS8})
		}
		// One warm round off the clock, then interleave.
		for _, f := range forms {
			f.best = 1<<63 - 1
			f.run()
		}
		for r := 0; r < rounds; r++ {
			for _, f := range forms {
				if el := f.run(); el < f.best {
					f.best = el
				}
			}
		}
		perDist := func(el time.Duration) float64 {
			return float64(el.Nanoseconds()) / float64(passDists)
		}
		r := KernelResult{
			D:          d,
			GenericNs:  perDist(forms[iGeneric].best),
			UnrolledNs: perDist(forms[iUnrolled].best),
			Batch4Ns:   perDist(forms[iBatch4].best),
		}
		if r.UnrolledNs > 0 {
			r.UnrolledSpeedup = r.GenericNs / r.UnrolledNs
		}
		if r.Batch4Ns > 0 {
			r.Batch4Speedup = r.GenericNs / r.Batch4Ns
		}
		if iAsmB4 >= 0 {
			r.AsmBatch4Ns = perDist(forms[iAsmB4].best)
			r.AsmBatch8Ns = perDist(forms[iAsmB8].best)
			r.AsmStrided8Ns = perDist(forms[iAsmS8].best)
			r.AsmNs = r.AsmBatch4Ns
			if r.AsmBatch8Ns < r.AsmNs {
				r.AsmNs = r.AsmBatch8Ns
			}
			if r.AsmStrided8Ns < r.AsmNs {
				r.AsmNs = r.AsmStrided8Ns
			}
			if r.AsmNs > 0 {
				r.AsmSpeedup = r.Batch4Ns / r.AsmNs
			}
		}
		fmt.Fprintf(os.Stderr, "kernel d=%d  generic %.2f ns  unrolled %.2f ns (%.2fx)  batch4 %.2f ns/dist (%.2fx)",
			d, r.GenericNs, r.UnrolledNs, r.UnrolledSpeedup, r.Batch4Ns, r.Batch4Speedup)
		if iAsmB4 >= 0 {
			fmt.Fprintf(os.Stderr, "  asm b4/b8/s8 %.2f/%.2f/%.2f ns/dist (%.2fx)",
				r.AsmBatch4Ns, r.AsmBatch8Ns, r.AsmStrided8Ns, r.AsmSpeedup)
		}
		fmt.Fprintln(os.Stderr)
		out = append(out, r)
	}
	if sink == 0 {
		fmt.Fprintln(os.Stderr, "kernel bench sink unexpectedly zero")
	}
	return out
}

// phaseMeans runs instrumented passes (recorder timing every query) and
// returns the best mean descent and scan nanoseconds per query — the
// minimum over five passes, the same noise-robust estimator as the
// timed loops (five rather than three because the phase means feed the
// d=2/3 no-regression acceptance check, where the real effect is near
// zero and single-core scheduling noise would otherwise dominate).
func phaseMeans(b *septree.Batch, queries [][]float64) (descent, scan float64) {
	descent, scan = -1, -1
	for pass := 0; pass < 5; pass++ {
		rec := obs.NewServeRecorder(obs.ServeConfig{Every: true}, b.Workers())
		b.Observe(rec)
		b.Run(queries)
		b.Observe(nil)
		snap := rec.Snapshot()
		if snap.Descent.Count > 0 {
			if m := float64(snap.Descent.Sum) / float64(snap.Descent.Count); descent < 0 || m < descent {
				descent = m
			}
		}
		if snap.Scan.Count > 0 {
			if m := float64(snap.Scan.Sum) / float64(snap.Scan.Count); scan < 0 || m < scan {
				scan = m
			}
		}
	}
	if descent < 0 {
		descent = 0
	}
	if scan < 0 {
		scan = 0
	}
	return descent, scan
}

// layoutQueries builds the layout cells' query stream: runs of eight
// spatially-adjacent queries (a stored center as the run anchor, plus
// small jitters around it). Correlated runs around stored points are
// the serving shape the engine actually sees from the library itself:
// the correction's QueryBatchClosed probes all points of one separator
// side — stored points, neighbors by construction — and external
// serving traffic batches are routinely spatially clustered too. Runs
// land whole inside one strand chunk (8 divides batchChunk), so the
// blocked engine can discover the same-leaf groups; the unblocked
// reference serves the identical stream query by query.
func layoutQueries(pts [][]float64, d, numQueries int, g *xrand.RNG) [][]float64 {
	const run = 8
	queries := make([][]float64, numQueries)
	for i := 0; i < numQueries; {
		anchor := pts[g.IntN(len(pts))]
		for r := 0; r < run && i < numQueries; r++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = anchor[j] + (g.Float64()-0.5)*0.02
			}
			queries[i] = q
			i++
		}
	}
	return queries
}

// layoutN returns the point count for one dimension's layout cell.
// Crossing-ball duplication grows steeply with d on uniform points
// (at d=6, n=5000 the tree stores ~10⁸ ball copies — tens of GB of
// inlined leaf records), so the workload shrinks as d grows to keep
// the structure buildable (the table below stays under ~1 GB of leaf
// records per frozen copy) while the per-leaf candidate counts — what
// the kernels and blocked scans actually chew through — stay at the
// dimension's realistic scale (leaf size doubles per dimension above 3).
func layoutN(d int) int {
	switch {
	case d <= 4:
		return 10000
	case d == 5:
		return 4000
	case d == 6:
		return 2000
	default:
		return 1200
	}
}

// layoutBlockWidth is the opt-mode query-block width for one dimension:
// the engine's own configuration choice. d=2/3 keep the default
// unblocked strand (their specialized whole-path scans leave nothing
// for blocking to amortize); d >= 4 use the full width 16 — two
// eight-lane assembly passes (or four four-wide Go passes) per
// candidate group.
func layoutBlockWidth(d int) int {
	if d <= 3 {
		return 1
	}
	return 16
}

// runLayoutBench measures ref vs opt serving per dimension over the
// clustered query stream of layoutQueries — correlated runs being both
// the library's own correction traffic and the case query blocking is
// built for; the ref mode serves the identical stream.
func runLayoutBench(dims []int, numQueries, iters int) ([]LayoutResult, error) {
	const k = 4
	var out []LayoutResult
	for _, d := range dims {
		n := layoutN(d)
		blockWidth := layoutBlockWidth(d)
		g := xrand.New(uint64(n*31 + d))
		pts := pointgen.Dedup(pointgen.MustGenerate(pointgen.UniformCube, n, d, g.Split()))
		sys := nbrsys.KNeighborhood(pts, k)
		tree, err := septree.Build(sys, xrand.New(42), nil)
		if err != nil {
			return nil, err
		}
		opt, err := septree.FreezeLayout(tree, septree.LayoutBlocked)
		if err != nil {
			return nil, err
		}
		ref, err := septree.FreezeLayout(tree, septree.LayoutBFS)
		if err != nil {
			return nil, err
		}
		ref.UseGenericKernels()
		pf := make([][]float64, len(pts))
		for i, p := range pts {
			pf[i] = p
		}
		queries := layoutQueries(pf, d, numQueries, g)
		refB := septree.NewBatch(ref, 1)
		optB := septree.NewBatch(opt, 1)
		optB.SetBlockWidth(blockWidth)
		refB.Run(queries)
		optB.Run(queries)
		for i := range queries {
			a, b := refB.Result(i), optB.Result(i)
			if len(a) != len(b) {
				return nil, fmt.Errorf("layout d=%d: ref and opt disagree on query %d", d, i)
			}
			for j := range a {
				if a[j] != b[j] {
					return nil, fmt.Errorf("layout d=%d: ref and opt disagree on query %d", d, i)
				}
			}
		}
		refBest, optBest := time.Duration(1<<63-1), time.Duration(1<<63-1)
		for it := 0; it < iters; it++ {
			start := time.Now()
			refB.Run(queries)
			if el := time.Since(start); el < refBest {
				refBest = el
			}
			start = time.Now()
			optB.Run(queries)
			if el := time.Since(start); el < optBest {
				optBest = el
			}
		}
		r := LayoutResult{
			D: d, N: len(pts), K: k,
			NumQueries: numQueries, Iterations: iters, BlockWidth: blockWidth,
			RefNsPerQuery: refBest.Nanoseconds() / int64(numQueries),
			OptNsPerQuery: optBest.Nanoseconds() / int64(numQueries),
			RefQPS:        float64(numQueries) / refBest.Seconds(),
			OptQPS:        float64(numQueries) / optBest.Seconds(),
		}
		if optBest > 0 {
			r.Speedup = float64(refBest) / float64(optBest)
		}
		// Phase means from non-timed instrumented passes, after the timed
		// loop so the recorder cannot color the ns/query numbers.
		r.RefDescentNs, r.RefScanNs = phaseMeans(refB, queries)
		r.OptDescentNs, r.OptScanNs = phaseMeans(optB, queries)
		fmt.Fprintf(os.Stderr,
			"layout d=%d  ref %6d ns/q  opt %6d ns/q  %.2fx  descent %5.0f->%5.0f ns  scan %5.0f->%5.0f ns\n",
			d, r.RefNsPerQuery, r.OptNsPerQuery, r.Speedup,
			r.RefDescentNs, r.OptDescentNs, r.RefScanNs, r.OptScanNs)
		out = append(out, r)
	}
	return out, nil
}
