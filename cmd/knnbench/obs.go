package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"sepdc/internal/nbrsys"
	"sepdc/internal/obs"
	"sepdc/internal/pointgen"
	"sepdc/internal/septree"
	"sepdc/internal/xrand"
)

// ObsOverhead is one serving-telemetry overhead measurement: the same
// batch engine over the same frozen structure and query stream, once
// with no observer attached, once with a ServeRecorder sampling at the
// production default (1 in 16 queries fully timed), once with the
// recorder AND a wide-event journal publishing every query, and once
// fully traced on top of that — every query carrying a request trace
// context through RunTraced, with every 16th request sampled (the
// knnload -trace-every default). Client-sampled queries take the timed
// phase-split route but record only their exemplar and journal timing
// (RecordExemplar), so the traced mode's recorder aggregates are
// identical to the journaled mode's; the traced_vs_jour_pct delta is
// the cost of the tracing layer itself. The acceptance budget is <= 5%
// on that delta and zero allocations per pass.
type ObsOverhead struct {
	N                int     `json:"n"`
	D                int     `json:"d"`
	K                int     `json:"k"`
	Procs            int     `json:"procs"`
	NumQueries       int     `json:"num_queries"`
	Iterations       int     `json:"iterations"`
	SampleEvery      int     `json:"sample_every"`
	NilNsPerQuery    int64   `json:"nil_ns_per_query"`
	ObsNsPerQuery    int64   `json:"obs_ns_per_query"`
	JourNsPerQuery   int64   `json:"jour_ns_per_query"`   // observer + journal attached
	TracedNsPerQuery int64   `json:"traced_ns_per_query"` // observer + journal + per-query trace contexts
	NilQPS           float64 `json:"nil_qps"`
	ObsQPS           float64 `json:"obs_qps"`
	JourQPS          float64 `json:"jour_qps"`
	TracedQPS        float64 `json:"traced_qps"`
	OverheadPct      float64 `json:"overhead_pct"`        // observer only, vs nil
	JourOverhead     float64 `json:"jour_overhead_pct"`   // observer + journal, vs nil
	TracedOverhead   float64 `json:"traced_overhead_pct"` // observer + journal + traces, vs nil
	// TracedVsJour is the increment tracing itself costs over the
	// already-instrumented (observer + journal) path — the column the
	// <=5% tracing budget is judged on. The vs-nil columns compound the
	// budgets of the observer and journal layers, which were accepted
	// separately.
	TracedVsJour float64 `json:"traced_vs_jour_pct"`
	NilAllocs        int64   `json:"nil_allocs_per_pass"`
	ObsAllocs        int64   `json:"obs_allocs_per_pass"`
	JourAllocs       int64   `json:"jour_allocs_per_pass"`
	TracedAllocs     int64   `json:"traced_allocs_per_pass"`
	SampledTotal     int64   `json:"sampled_total"` // timed queries absorbed by the recorder
}

// measureObsOverhead times nil-observer vs instrumented serving with the
// same interleaved-minimum protocol as the query section: passes
// alternate nil, instrumented, nil, … so both modes sample the same
// wall-clock windows and the minimum discards host noise.
func measureObsOverhead(c queryCfg, numQueries, iters int) (ObsOverhead, error) {
	g := xrand.New(uint64(c.n*31 + c.d))
	pts := pointgen.Dedup(pointgen.MustGenerate(pointgen.UniformCube, c.n, c.d, g.Split()))
	sys := nbrsys.KNeighborhood(pts, c.k)
	tree, err := septree.Build(sys, xrand.New(42), nil)
	if err != nil {
		return ObsOverhead{}, err
	}
	frozen, err := septree.Freeze(tree)
	if err != nil {
		return ObsOverhead{}, err
	}
	queries := make([][]float64, numQueries)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = pts[g.IntN(len(pts))]
		} else {
			queries[i] = g.InCube(c.d)
		}
	}

	plain := septree.NewBatch(frozen, 1)
	rec := obs.NewServeRecorder(obs.ServeConfig{}, 1) // production defaults: 1 in 16 sampled
	inst := septree.NewBatch(frozen, 1)
	inst.Observe(rec)
	rec2 := obs.NewServeRecorder(obs.ServeConfig{}, 1)
	jour := obs.NewJournal(obs.JournalConfig{}, 1) // production default ring
	journaled := septree.NewBatch(frozen, 1)
	journaled.Observe(rec2)
	journaled.Journal(jour)
	rec3 := obs.NewServeRecorder(obs.ServeConfig{}, 1)
	jour3 := obs.NewJournal(obs.JournalConfig{}, 1)
	tracedB := septree.NewBatch(frozen, 1)
	tracedB.Observe(rec3)
	tracedB.Journal(jour3)
	// Every query carries a trace context, grouped 16 queries to a
	// "request" like a production batch; every 16th request is sampled
	// (the knnload -trace-every default), forcing its queries onto the
	// timed phase-split path.
	traces := make([]obs.TraceContext, numQueries)
	for i := range traces {
		req := uint64(i / 16)
		tc := obs.GenTrace(uint64(c.n*31+c.d), req)
		tc.Sampled = req%16 == 0
		traces[i] = tc
	}

	type modeRun struct {
		b      *septree.Batch
		traces []obs.TraceContext // nil = plain Run
		best   time.Duration
		allocs uint64
	}
	modes := []*modeRun{{b: plain}, {b: inst}, {b: journaled}, {b: tracedB, traces: traces}}
	for _, m := range modes {
		m.best = time.Duration(1<<63 - 1)
		m.b.RunTraced(queries, m.traces) // warm arenas, recorder rings, and tail buffers
	}
	runtime.GC()
	var before, after runtime.MemStats
	for i := 0; i < iters; i++ {
		for _, m := range modes {
			runtime.ReadMemStats(&before)
			start := time.Now()
			m.b.RunTraced(queries, m.traces)
			el := time.Since(start)
			runtime.ReadMemStats(&after)
			if el < m.best {
				m.best = el
			}
			m.allocs += after.Mallocs - before.Mallocs
		}
	}
	snap := rec.Snapshot()
	res := ObsOverhead{
		N: len(pts), D: c.d, K: c.k, Procs: 1,
		NumQueries: numQueries, Iterations: iters,
		SampleEvery:      int(rec.SampleEvery()),
		NilNsPerQuery:    modes[0].best.Nanoseconds() / int64(numQueries),
		ObsNsPerQuery:    modes[1].best.Nanoseconds() / int64(numQueries),
		JourNsPerQuery:   modes[2].best.Nanoseconds() / int64(numQueries),
		TracedNsPerQuery: modes[3].best.Nanoseconds() / int64(numQueries),
		NilQPS:           float64(numQueries) / modes[0].best.Seconds(),
		ObsQPS:           float64(numQueries) / modes[1].best.Seconds(),
		JourQPS:          float64(numQueries) / modes[2].best.Seconds(),
		TracedQPS:        float64(numQueries) / modes[3].best.Seconds(),
		NilAllocs:        int64(modes[0].allocs) / int64(iters),
		ObsAllocs:        int64(modes[1].allocs) / int64(iters),
		JourAllocs:       int64(modes[2].allocs) / int64(iters),
		TracedAllocs:     int64(modes[3].allocs) / int64(iters),
		SampledTotal:     snap.Sampled,
	}
	res.OverheadPct = 100 * (float64(res.ObsNsPerQuery) - float64(res.NilNsPerQuery)) / float64(res.NilNsPerQuery)
	res.JourOverhead = 100 * (float64(res.JourNsPerQuery) - float64(res.NilNsPerQuery)) / float64(res.NilNsPerQuery)
	res.TracedOverhead = 100 * (float64(res.TracedNsPerQuery) - float64(res.NilNsPerQuery)) / float64(res.NilNsPerQuery)
	res.TracedVsJour = 100 * (float64(res.TracedNsPerQuery) - float64(res.JourNsPerQuery)) / float64(res.JourNsPerQuery)
	return res, nil
}

// runObsBench measures the telemetry overhead on the large query-grid
// cells, where per-query work is smallest relative to the fixed
// sampling cost and the overhead is therefore most visible.
func runObsBench(numQueries, iters int) ([]ObsOverhead, error) {
	var all []ObsOverhead
	for _, c := range []queryCfg{{100000, 2, 4}, {100000, 3, 4}} {
		r, err := measureObsOverhead(c, numQueries, iters)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs   n=%-6d d=%d k=%d  nil %6d ns/q  obs %6d ns/q (%+5.1f%%)  obs+journal %6d ns/q (%+5.1f%%)  traced %6d ns/q (%+5.1f%% vs nil, %+5.1f%% vs jour)  allocs nil=%d obs=%d jour=%d traced=%d\n",
			r.N, r.D, r.K, r.NilNsPerQuery, r.ObsNsPerQuery, r.OverheadPct,
			r.JourNsPerQuery, r.JourOverhead, r.TracedNsPerQuery, r.TracedOverhead, r.TracedVsJour,
			r.NilAllocs, r.ObsAllocs, r.JourAllocs, r.TracedAllocs)
		all = append(all, r)
	}
	return all, nil
}

// JournalBench characterizes the wide-event journal itself rather than
// its serving overhead: how fast a concurrent consumer can pull events
// out (the /journal?drain=1 path), and how hard the ring overwrites
// when nobody drains (the flight-recorder-only deployment, where
// Snapshot reads whatever the ring still holds).
type JournalBench struct {
	N          int `json:"n"`
	D          int `json:"d"`
	K          int `json:"k"`
	NumQueries int `json:"num_queries"`
	PerStrand  int `json:"per_strand"` // ring capacity per strand
	Batches    int `json:"batches"`

	// Drained leg: a consumer drains continuously while batches serve.
	DrainedEvents   uint64  `json:"drained_events"`
	DrainedPerSec   float64 `json:"drained_events_per_sec"`
	DrainedDropped  uint64  `json:"drained_dropped"` // overwritten before the drainer got there
	DrainedDropRate float64 `json:"drained_drop_rate"`

	// Saturated leg: nobody drains; the ring overwrites freely and one
	// final drain accounts for everything lost.
	SaturatedPublished uint64  `json:"saturated_published"`
	SaturatedDropped   uint64  `json:"saturated_dropped"`
	OverwriteRate      float64 `json:"overwrite_rate"` // dropped / published
}

// runJournalBench measures journal drain throughput and ring-overwrite
// behavior over a live batch engine on the d=2 query cell.
func runJournalBench(numQueries, batches int) (*JournalBench, error) {
	const perStrand = 1024 // deliberately small: overwrite pressure is the point
	c := queryCfg{100000, 2, 4}
	g := xrand.New(uint64(c.n*31 + c.d))
	pts := pointgen.Dedup(pointgen.MustGenerate(pointgen.UniformCube, c.n, c.d, g.Split()))
	sys := nbrsys.KNeighborhood(pts, c.k)
	tree, err := septree.Build(sys, xrand.New(42), nil)
	if err != nil {
		return nil, err
	}
	frozen, err := septree.Freeze(tree)
	if err != nil {
		return nil, err
	}
	queries := make([][]float64, numQueries)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = pts[g.IntN(len(pts))]
		} else {
			queries[i] = g.InCube(c.d)
		}
	}
	res := &JournalBench{
		N: len(pts), D: c.d, K: c.k,
		NumQueries: numQueries, PerStrand: perStrand, Batches: batches,
	}

	// Drained leg: consumer drains as fast as it can while serving runs.
	jour := obs.NewJournal(obs.JournalConfig{PerStrand: perStrand}, 1)
	b := septree.NewBatch(frozen, 1)
	b.Journal(jour)
	b.Run(queries) // warm
	jour.Drain()
	stop := make(chan struct{})
	done := make(chan struct{})
	var drained, dropped uint64 // dropped is cumulative in each Drain; keep the last
	go func() {
		defer close(done)
		for {
			d := jour.Drain()
			drained += uint64(len(d.Events))
			dropped = d.Dropped
			select {
			case <-stop:
				d := jour.Drain()
				drained += uint64(len(d.Events))
				dropped = d.Dropped
				return
			default:
			}
		}
	}()
	start := time.Now()
	for i := 0; i < batches; i++ {
		b.Run(queries)
	}
	el := time.Since(start)
	close(stop)
	<-done
	res.DrainedEvents = drained
	res.DrainedDropped = dropped
	res.DrainedPerSec = float64(drained) / el.Seconds()
	if total := drained + dropped; total > 0 {
		res.DrainedDropRate = float64(dropped) / float64(total)
	}

	// Saturated leg: same engine, nobody drains until the end.
	jour2 := obs.NewJournal(obs.JournalConfig{PerStrand: perStrand}, 1)
	b.Journal(jour2)
	for i := 0; i < batches; i++ {
		b.Run(queries)
	}
	d := jour2.Drain()
	res.SaturatedPublished = d.Published
	res.SaturatedDropped = d.Dropped
	if d.Published > 0 {
		res.OverwriteRate = float64(d.Dropped) / float64(d.Published)
	}
	fmt.Fprintf(os.Stderr, "journal n=%-6d d=%d ring=%d  drained %.0f ev/s (drop rate %.3f)  saturated overwrite rate %.3f (%d/%d)\n",
		res.N, res.D, perStrand, res.DrainedPerSec, res.DrainedDropRate,
		res.OverwriteRate, res.SaturatedDropped, res.SaturatedPublished)
	return res, nil
}
