package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"sepdc/internal/nbrsys"
	"sepdc/internal/obs"
	"sepdc/internal/pointgen"
	"sepdc/internal/septree"
	"sepdc/internal/xrand"
)

// ObsOverhead is one serving-telemetry overhead measurement: the same
// batch engine over the same frozen structure and query stream, once
// with no observer attached and once with a ServeRecorder sampling at
// the production default (1 in 16 queries fully timed). The acceptance
// budget for the instrumented path is <= 5% throughput overhead and
// zero allocations per pass.
type ObsOverhead struct {
	N             int     `json:"n"`
	D             int     `json:"d"`
	K             int     `json:"k"`
	Procs         int     `json:"procs"`
	NumQueries    int     `json:"num_queries"`
	Iterations    int     `json:"iterations"`
	SampleEvery   int     `json:"sample_every"`
	NilNsPerQuery int64   `json:"nil_ns_per_query"`
	ObsNsPerQuery int64   `json:"obs_ns_per_query"`
	NilQPS        float64 `json:"nil_qps"`
	ObsQPS        float64 `json:"obs_qps"`
	OverheadPct   float64 `json:"overhead_pct"`
	NilAllocs     int64   `json:"nil_allocs_per_pass"`
	ObsAllocs     int64   `json:"obs_allocs_per_pass"`
	SampledTotal  int64   `json:"sampled_total"` // timed queries absorbed by the recorder
}

// measureObsOverhead times nil-observer vs instrumented serving with the
// same interleaved-minimum protocol as the query section: passes
// alternate nil, instrumented, nil, … so both modes sample the same
// wall-clock windows and the minimum discards host noise.
func measureObsOverhead(c queryCfg, numQueries, iters int) (ObsOverhead, error) {
	g := xrand.New(uint64(c.n*31 + c.d))
	pts := pointgen.Dedup(pointgen.MustGenerate(pointgen.UniformCube, c.n, c.d, g.Split()))
	sys := nbrsys.KNeighborhood(pts, c.k)
	tree, err := septree.Build(sys, xrand.New(42), nil)
	if err != nil {
		return ObsOverhead{}, err
	}
	frozen, err := septree.Freeze(tree)
	if err != nil {
		return ObsOverhead{}, err
	}
	queries := make([][]float64, numQueries)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = pts[g.IntN(len(pts))]
		} else {
			queries[i] = g.InCube(c.d)
		}
	}

	plain := septree.NewBatch(frozen, 1)
	rec := obs.NewServeRecorder(obs.ServeConfig{}, 1) // production defaults: 1 in 16 sampled
	inst := septree.NewBatch(frozen, 1)
	inst.Observe(rec)

	type modeRun struct {
		b      *septree.Batch
		best   time.Duration
		allocs uint64
	}
	modes := []*modeRun{{b: plain}, {b: inst}}
	for _, m := range modes {
		m.best = time.Duration(1<<63 - 1)
		m.b.Run(queries) // warm arenas, recorder rings, and tail buffers
	}
	runtime.GC()
	var before, after runtime.MemStats
	for i := 0; i < iters; i++ {
		for _, m := range modes {
			runtime.ReadMemStats(&before)
			start := time.Now()
			m.b.Run(queries)
			el := time.Since(start)
			runtime.ReadMemStats(&after)
			if el < m.best {
				m.best = el
			}
			m.allocs += after.Mallocs - before.Mallocs
		}
	}
	snap := rec.Snapshot()
	res := ObsOverhead{
		N: len(pts), D: c.d, K: c.k, Procs: 1,
		NumQueries: numQueries, Iterations: iters,
		SampleEvery:   int(rec.SampleEvery()),
		NilNsPerQuery: modes[0].best.Nanoseconds() / int64(numQueries),
		ObsNsPerQuery: modes[1].best.Nanoseconds() / int64(numQueries),
		NilQPS:        float64(numQueries) / modes[0].best.Seconds(),
		ObsQPS:        float64(numQueries) / modes[1].best.Seconds(),
		NilAllocs:     int64(modes[0].allocs) / int64(iters),
		ObsAllocs:     int64(modes[1].allocs) / int64(iters),
		SampledTotal:  snap.Sampled,
	}
	res.OverheadPct = 100 * (float64(res.ObsNsPerQuery) - float64(res.NilNsPerQuery)) / float64(res.NilNsPerQuery)
	return res, nil
}

// runObsBench measures the telemetry overhead on the large query-grid
// cells, where per-query work is smallest relative to the fixed
// sampling cost and the overhead is therefore most visible.
func runObsBench(numQueries, iters int) ([]ObsOverhead, error) {
	var all []ObsOverhead
	for _, c := range []queryCfg{{100000, 2, 4}, {100000, 3, 4}} {
		r, err := measureObsOverhead(c, numQueries, iters)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs   n=%-6d d=%d k=%d  nil %6d ns/q  obs %6d ns/q  overhead %+5.1f%%  allocs nil=%d obs=%d\n",
			r.N, r.D, r.K, r.NilNsPerQuery, r.ObsNsPerQuery, r.OverheadPct, r.NilAllocs, r.ObsAllocs)
		all = append(all, r)
	}
	return all, nil
}
