package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sepdc/internal/nbrsys"
	"sepdc/internal/pointgen"
	"sepdc/internal/septree"
	"sepdc/internal/vec"
	"sepdc/internal/xrand"
)

// QueryResult is one query-serving measurement: one engine (pointer tree,
// frozen flat layout, or the batched engine over the frozen layout) at one
// parallelism setting, serving the same query stream.
type QueryResult struct {
	Mode          string  `json:"mode"`  // pointer | frozen | batch
	Procs         int     `json:"procs"` // GOMAXPROCS / batch strands (1 for the sequential modes)
	N             int     `json:"n"`
	D             int     `json:"d"`
	K             int     `json:"k"`
	NumQueries    int     `json:"num_queries"`
	Iterations    int     `json:"iterations"`
	NsPerQuery    int64   `json:"ns_per_query"`
	QPS           float64 `json:"qps"`
	AllocsPerOp   int64   `json:"allocs_per_batch"` // allocations per full pass over the stream
	NodesPerQuery float64 `json:"nodes_per_query"`  // septree nodes visited (frozen traversal)
	LeafPerQuery  float64 `json:"leaf_scans_per_query"`
}

// queryGrid is the serving workload: the build grid's sphere cells, plus
// 10x-larger structures where the layouts diverge hardest — at n=10000
// the pointer tree still mostly fits in cache, while at n=100000 its
// scattered nodes miss on nearly every hop and the flat arrays keep
// their locality.
type queryCfg struct {
	n, d, k int
}

var queryGrid = []queryCfg{
	{10000, 2, 4},
	{10000, 3, 4},
	{100000, 2, 4},
	{100000, 3, 4},
}

// parseProcs turns the -procs flag into the deduplicated sweep list,
// defaulting to 1, 4, NumCPU when the flag is empty.
func parseProcs(spec string) ([]int, error) {
	procs := []int{1, 4, runtime.NumCPU()}
	if spec != "" {
		procs = procs[:0]
		for _, field := range strings.Split(spec, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || p < 1 {
				return nil, fmt.Errorf("bad -procs entry %q", field)
			}
			procs = append(procs, p)
		}
	}
	seen := map[int]bool{}
	out := procs[:0]
	for _, p := range procs {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out, nil
}

// measureQueries benchmarks the three serving engines over one structure.
// The pointer and frozen modes run sequentially (procs=1); the batch
// engine is swept over the -procs settings with GOMAXPROCS pinned to
// match, so the JSON records scaling honestly on whatever machine ran it.
func measureQueries(c queryCfg, numQueries, iters int, procs []int) ([]QueryResult, error) {
	g := xrand.New(uint64(c.n*31 + c.d))
	pts := pointgen.Dedup(pointgen.MustGenerate(pointgen.UniformCube, c.n, c.d, g.Split()))
	sys := nbrsys.KNeighborhood(pts, c.k)
	tree, err := septree.Build(sys, xrand.New(42), nil)
	if err != nil {
		return nil, err
	}
	frozen, err := septree.Freeze(tree)
	if err != nil {
		return nil, err
	}
	queries := make([][]float64, numQueries)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = pts[g.IntN(len(pts))]
		} else {
			queries[i] = g.InCube(c.d)
		}
	}
	// Per-query traversal shape, measured once outside the timed loops.
	var nodes, scans int64
	var buf []int
	for _, q := range queries {
		var nv, ls int
		buf, nv, ls = frozen.Covering(q, buf[:0])
		nodes += int64(nv)
		scans += int64(ls)
	}
	nodesPerQ := float64(nodes) / float64(numQueries)
	leafPerQ := float64(scans) / float64(numQueries)

	base := QueryResult{
		N: len(pts), D: c.d, K: c.k,
		NumQueries: numQueries, Iterations: iters,
		NodesPerQuery: nodesPerQ, LeafPerQuery: leafPerQ,
	}
	// All modes are timed as iters independently-timed passes taken
	// round-robin (pointer, frozen, batch…, pointer, frozen, …), and each
	// mode reports its fastest pass. Interleaving means every mode samples
	// the same wall-clock windows, so multi-second host noise (CPU steal,
	// thermal throttling on shared machines) cannot skew one mode's entire
	// measurement; the minimum is the standard noise-robust estimator, and
	// every pass does identical work — including any per-query allocation
	// and the GC it triggers — so the comparison stays fair.
	sink := 0
	type modeRun struct {
		name   string
		procs  int // reported parallelism (batch strands)
		maxp   int // GOMAXPROCS to pin while this mode's pass runs
		pass   func()
		best   time.Duration
		allocs uint64
	}
	ambient := runtime.GOMAXPROCS(0)
	modes := []*modeRun{
		{name: "pointer", procs: 1, maxp: ambient, pass: func() {
			for _, q := range queries {
				balls, _ := tree.Query(vec.Vec(q))
				sink += len(balls)
			}
		}},
		{name: "frozen", procs: 1, maxp: ambient, pass: func() {
			for _, q := range queries {
				buf, _, _ = frozen.Covering(q, buf[:0])
				sink += len(buf)
			}
		}},
	}
	for _, p := range procs {
		b := septree.NewBatch(frozen, p)
		modes = append(modes, &modeRun{
			name: "batch", procs: p, maxp: p,
			pass: func() { b.Run(queries) },
		})
	}
	for _, m := range modes {
		m.best = time.Duration(1<<63 - 1)
		runtime.GOMAXPROCS(m.maxp)
		m.pass() // warm up arenas and the allocator off the clock
	}
	runtime.GC()
	var before, after runtime.MemStats
	for i := 0; i < iters; i++ {
		for _, m := range modes {
			runtime.GOMAXPROCS(m.maxp)
			runtime.ReadMemStats(&before)
			start := time.Now()
			m.pass()
			el := time.Since(start)
			runtime.ReadMemStats(&after)
			if el < m.best {
				m.best = el
			}
			m.allocs += after.Mallocs - before.Mallocs
		}
	}
	runtime.GOMAXPROCS(ambient)
	if sink < 0 {
		return nil, fmt.Errorf("impossible")
	}
	var out []QueryResult
	for _, m := range modes {
		r := base
		r.Mode = m.name
		r.Procs = m.procs
		r.NsPerQuery = m.best.Nanoseconds() / int64(numQueries)
		r.QPS = float64(numQueries) / m.best.Seconds()
		r.AllocsPerOp = int64(m.allocs) / int64(iters)
		out = append(out, r)
	}
	return out, nil
}

func runQueryBench(numQueries, iters int, procs []int) ([]QueryResult, error) {
	var all []QueryResult
	for _, c := range queryGrid {
		rs, err := measureQueries(c, numQueries, iters, procs)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			fmt.Fprintf(os.Stderr, "query %-8s procs=%-2d n=%-6d d=%d k=%d  %8d ns/query  %10.0f qps  %7d allocs/pass\n",
				r.Mode, r.Procs, r.N, r.D, r.K, r.NsPerQuery, r.QPS, r.AllocsPerOp)
		}
		all = append(all, rs...)
	}
	return all, nil
}
