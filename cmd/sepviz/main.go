// Command sepviz renders a 2-D point set, its sphere separator, and the
// crossing k-neighborhood balls as an SVG — a visual sanity check of the
// geometry that Figure 1 of the paper sketches.
//
//	sepviz -n 2000 -dist annulus -k 2 -o separator.svg
//	sepviz -n 3000 -tree -depth 5 -o partition.svg   # recursive partition
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"sepdc/internal/geom"
	"sepdc/internal/nbrsys"
	"sepdc/internal/pointgen"
	"sepdc/internal/separator"
	"sepdc/internal/vec"
	"sepdc/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sepviz:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 2000, "number of points")
	dist := flag.String("dist", "uniform-cube", "distribution")
	k := flag.Int("k", 2, "neighborhood size")
	seed := flag.Uint64("seed", 7, "random seed")
	out := flag.String("o", "separator.svg", "output SVG path")
	tree := flag.Bool("tree", false, "render the recursive partition instead of one separator")
	depth := flag.Int("depth", 5, "partition depth for -tree")
	flag.Parse()

	g := xrand.New(*seed)
	pts, err := pointgen.Generate(pointgen.Dist(*dist), *n, 2, g)
	if err != nil {
		return err
	}
	pts = pointgen.Dedup(pts)
	if *tree {
		svg := renderTree(pts, g, *depth)
		if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote recursive partition (depth %d) to %s\n", *depth, *out)
		return nil
	}
	sys := nbrsys.KNeighborhood(pts, *k)
	res, err := separator.FindGood(pts, g, nil)
	if err != nil {
		return err
	}
	in, ex, cross := sys.Partition(res.Sep)
	fmt.Printf("separator: %v\n", res.Sep)
	fmt.Printf("split: %d interior / %d exterior (ratio %.3f), trials %d\n",
		res.Stats.Interior, res.Stats.Exterior, res.Stats.Ratio(), res.Trials)
	fmt.Printf("balls: %d interior, %d exterior, %d crossing (ι = %d)\n",
		len(in), len(ex), len(cross), len(cross))

	svg := render(pts, sys, res.Sep, cross)
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// renderTree draws the point set with the separators of a depth-bounded
// recursive sphere partition, separator strokes thinning with depth.
func renderTree(pts []vec.Vec, g *xrand.RNG, maxDepth int) string {
	b := geom.NewBounds(pts)
	span := math.Max(b.Hi[0]-b.Lo[0], b.Hi[1]-b.Lo[1])
	if span == 0 {
		span = 1
	}
	const size = 900.0
	const margin = 40.0
	scale := (size - 2*margin) / span
	tx := func(x float64) float64 { return margin + (x-b.Lo[0])*scale }
	ty := func(y float64) float64 { return size - margin - (y-b.Lo[1])*scale }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", size, size, size, size)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	for _, p := range pts {
		fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="1.2" fill="#555"/>`+"\n", tx(p[0]), ty(p[1]))
	}
	var rec func(idx []int, depth int, gg *xrand.RNG)
	rec = func(idx []int, depth int, gg *xrand.RNG) {
		if depth >= maxDepth || len(idx) < 64 {
			return
		}
		sub := make([]vec.Vec, len(idx))
		for i, j := range idx {
			sub[i] = pts[j]
		}
		res, err := separator.FindGood(sub, gg, nil)
		if err != nil {
			return
		}
		width := 3.0 / float64(depth+1)
		switch s := res.Sep.(type) {
		case geom.Sphere:
			fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="none" stroke="#c0392b" stroke-width="%.2f" stroke-opacity="0.8"/>`+"\n",
				tx(s.Center[0]), ty(s.Center[1]), s.Radius*scale, width)
		case geom.Halfspace:
			px, py := s.Normal[0]*s.Offset, s.Normal[1]*s.Offset
			dx, dy := -s.Normal[1], s.Normal[0]
			ext := span * 2
			fmt.Fprintf(&sb, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#2980b9" stroke-width="%.2f" stroke-opacity="0.8"/>`+"\n",
				tx(px-dx*ext), ty(py-dy*ext), tx(px+dx*ext), ty(py+dy*ext), width)
		}
		var lo, hi []int
		for _, j := range idx {
			if res.Sep.Side(pts[j]) <= 0 {
				lo = append(lo, j)
			} else {
				hi = append(hi, j)
			}
		}
		if len(lo) == 0 || len(hi) == 0 {
			return
		}
		gl, gr := gg.Split(), gg.Split()
		rec(lo, depth+1, gl)
		rec(hi, depth+1, gr)
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	rec(idx, 0, g)
	sb.WriteString("</svg>\n")
	return sb.String()
}

// render maps the scene into a 900x900 viewport.
func render(pts []vec.Vec, sys *nbrsys.System, sep geom.Separator, cross []int) string {
	b := geom.NewBounds(pts)
	span := math.Max(b.Hi[0]-b.Lo[0], b.Hi[1]-b.Lo[1])
	if span == 0 {
		span = 1
	}
	const size = 900.0
	const margin = 40.0
	scale := (size - 2*margin) / span
	tx := func(x float64) float64 { return margin + (x-b.Lo[0])*scale }
	ty := func(y float64) float64 { return size - margin - (y-b.Lo[1])*scale }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", size, size, size, size)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	crossing := make(map[int]bool, len(cross))
	for _, i := range cross {
		crossing[i] = true
	}
	// Crossing balls first (under the points).
	for _, i := range cross {
		fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="none" stroke="#e6a700" stroke-width="0.8"/>`+"\n",
			tx(sys.Centers[i][0]), ty(sys.Centers[i][1]), sys.Radii[i]*scale)
	}
	// Points, colored by side.
	for i, p := range pts {
		color := "#2b6cb0" // interior
		if sep.Side(p) > 0 {
			color = "#c53030" // exterior
		}
		r := 1.6
		if crossing[i] {
			r = 2.4
		}
		fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="%.1f" fill="%s"/>`+"\n", tx(p[0]), ty(p[1]), r, color)
	}
	// The separator on top.
	switch s := sep.(type) {
	case geom.Sphere:
		fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="none" stroke="black" stroke-width="2" stroke-dasharray="6 3"/>`+"\n",
			tx(s.Center[0]), ty(s.Center[1]), s.Radius*scale)
	case geom.Halfspace:
		// Draw the line n·x = b clipped to the viewport diagonal extent.
		nx, ny, off := s.Normal[0], s.Normal[1], s.Offset
		// A point on the line and its direction.
		px, py := nx*off, ny*off
		dx, dy := -ny, nx
		ext := span * 2
		fmt.Fprintf(&sb, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="black" stroke-width="2" stroke-dasharray="6 3"/>`+"\n",
			tx(px-dx*ext), ty(py-dy*ext), tx(px+dx*ext), ty(py+dy*ext))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
