package main

import (
	"strings"
	"testing"

	"sepdc/internal/geom"
	"sepdc/internal/nbrsys"
	"sepdc/internal/pointgen"
	"sepdc/internal/vec"
	"sepdc/internal/xrand"
)

func TestRenderSphereScene(t *testing.T) {
	g := xrand.New(1)
	pts := pointgen.MustGenerate(pointgen.UniformCube, 200, 2, g)
	sys := nbrsys.KNeighborhood(pts, 1)
	sep := geom.Sphere{Center: vec.Of(0.5, 0.5), Radius: 0.3}
	_, _, cross := sys.Partition(sep)
	svg := render(pts, sys, sep, cross)
	for _, want := range []string{"<svg", "</svg>", "stroke-dasharray", "circle"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One dot per point plus one circle per crossing ball plus the separator.
	if got := strings.Count(svg, "<circle"); got != len(pts)+len(cross)+1 {
		t.Errorf("SVG has %d circles, want %d", got, len(pts)+len(cross)+1)
	}
}

func TestRenderHyperplaneScene(t *testing.T) {
	g := xrand.New(2)
	pts := pointgen.MustGenerate(pointgen.Gaussian, 100, 2, g)
	sys := nbrsys.KNeighborhood(pts, 1)
	sep := geom.Halfspace{Normal: vec.Of(1, 0), Offset: 0}
	svg := render(pts, sys, sep, nil)
	if !strings.Contains(svg, "<line") {
		t.Error("hyperplane separator not drawn as a line")
	}
}

func TestRenderTree(t *testing.T) {
	g := xrand.New(3)
	pts := pointgen.MustGenerate(pointgen.UniformCube, 600, 2, g)
	svg := renderTree(pts, g.Split(), 4)
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("tree SVG not closed")
	}
	// Points plus at least a handful of separator strokes.
	if strings.Count(svg, "<circle")+strings.Count(svg, "<line") < len(pts)+3 {
		t.Error("tree render missing separators")
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestRenderDegenerateSpan(t *testing.T) {
	// All points identical: span is zero; render must not divide by zero.
	pts := []vec.Vec{vec.Of(1, 1), vec.Of(1, 1)}
	sys := &nbrsys.System{Centers: pts, Radii: []float64{0, 0}}
	sep := geom.Sphere{Center: vec.Of(1, 1), Radius: 1}
	svg := render(pts, sys, sep, nil)
	if !strings.Contains(svg, "</svg>") || strings.Contains(svg, "NaN") {
		t.Error("degenerate render produced invalid SVG")
	}
}
