package main

import "testing"

func TestRunDispatch(t *testing.T) {
	// The registry listing and help must succeed.
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
	if err := run(nil); err != nil {
		t.Errorf("bare invocation: %v", err)
	}
	// Errors.
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"run"}); err == nil {
		t.Error("run without ids accepted")
	}
	if err := run([]string{"run", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"run", "E4", "-bogusflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	// E4 (the punting simulation) is the cheapest full experiment.
	if err := run([]string{"run", "e4", "-quick", "-seed", "3"}); err != nil {
		t.Errorf("run E4: %v", err)
	}
	if err := run([]string{"run", "E4", "-quick", "-markdown"}); err != nil {
		t.Errorf("run E4 markdown: %v", err)
	}
}
