// Command sepdc runs the reproduction experiments (E1–E12 in DESIGN.md):
//
//	sepdc list                  # show the experiment registry
//	sepdc run E7                # run one experiment
//	sepdc run all               # run the whole suite
//	sepdc run E1 E5 -quick      # subset, reduced sweep sizes
//	sepdc run all -markdown     # emit GitHub-flavored markdown (EXPERIMENTS.md)
//
// Flags: -seed N, -quick, -markdown, -workers N.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sepdc/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sepdc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		for _, e := range exp.All() {
			fmt.Printf("%-4s %-45s %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	case "run":
		return runExperiments(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		return fmt.Errorf("unknown command %q (try: sepdc list | sepdc run all)", args[0])
	}
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1992, "random seed for the whole suite")
	quick := fs.Bool("quick", false, "reduced sweep sizes (seconds instead of minutes)")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavored markdown")
	workers := fs.Int("workers", 0, "goroutine parallelism (0 = GOMAXPROCS)")

	// Accept experiment ids before flags: `sepdc run E1 E5 -quick`.
	var ids []string
	rest := args
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		ids = append(ids, rest[0])
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiments named (try: sepdc run all)")
	}

	var selected []exp.Experiment
	if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
		selected = exp.All()
	} else {
		for _, id := range ids {
			e, ok := exp.ByID(strings.ToUpper(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (sepdc list shows the registry)", id)
			}
			selected = append(selected, e)
		}
	}

	cfg := exp.Config{Seed: *seed, Quick: *quick, Workers: *workers}
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(cfg)
		elapsed := time.Since(start).Round(time.Millisecond)
		if *markdown {
			fmt.Printf("## %s — %s\n\n", e.ID, e.Title)
			fmt.Printf("**Paper claim.** %s\n\n", e.Claim)
			for _, tb := range tables {
				fmt.Println(tb.Markdown())
			}
			fmt.Printf("*(run time %v, seed %d%s)*\n\n", elapsed, *seed, quickSuffix(*quick))
		} else {
			fmt.Printf("%s — %s\n", e.ID, e.Title)
			fmt.Printf("claim: %s\n\n", e.Claim)
			for _, tb := range tables {
				fmt.Println(tb.Render())
			}
			fmt.Printf("(run time %v)\n\n", elapsed)
		}
	}
	return nil
}

func quickSuffix(q bool) string {
	if q {
		return ", quick mode"
	}
	return ""
}

func usage() {
	fmt.Println(`sepdc — experiment runner for the SPAA'92 sphere-separator reproduction

usage:
  sepdc list                    list experiments E1–E12 with their claims
  sepdc run <ids...|all> [flags]

flags for run:
  -seed N       random seed (default 1992)
  -quick        reduced sweeps
  -markdown     markdown output for EXPERIMENTS.md
  -workers N    goroutine parallelism (0 = GOMAXPROCS)`)
}
