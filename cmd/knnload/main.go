// Command knnload is the deterministic load generator for cmd/knnserve:
// seeded traffic shapes replayed over the binary wire protocol, with
// per-request latency percentiles recorded under saturation and an
// optional golden cross-check of every answer against a locally built
// reference structure.
//
// The server and the generator must agree on the workload parameters
// (-dist/-n/-d/-k/-seed) — both derive the point set through the same
// pointgen pipeline, which is what makes stored-point replay and the
// golden check possible without any out-of-band channel.
//
//	knnserve -addr :8080 -n 20000 -d 2 -k 3 -seed 1 &
//	knnload  -addr localhost:8080 -n 20000 -d 2 -k 3 -seed 1 \
//	    -shapes uniform,hot,mixed,swap -conns 8 -requests 200 -golden
//
// With -bench PATH the results are merged into BENCH_knn.json's "serve"
// section, preserving every other section verbatim.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sepdc"
	"sepdc/internal/pointgen"
	"sepdc/internal/serveproto"
	"sepdc/internal/xrand"
)

const binaryContentType = "application/x-sepdc-query"

// ShapeResult is one traffic shape's measurement — the unit of the
// BENCH_knn.json "serve" section.
type ShapeResult struct {
	Shape     string  `json:"shape"`
	Conns     int     `json:"conns"`
	Batch     int     `json:"batch"`
	Requests  int64   `json:"requests"`
	Queries   int64   `json:"queries"`
	Errors    int64   `json:"errors"`
	Rejected  int64   `json:"rejected"` // 503 sheds (admission control, not errors)
	Swaps     int64   `json:"swaps,omitempty"`
	GoldenBad int64   `json:"golden_failures"`
	Elapsed   float64 `json:"elapsed_ms"`
	QPS       float64 `json:"queries_per_sec"`
	P50us     float64 `json:"p50_us"`
	P90us     float64 `json:"p90_us"`
	P99us     float64 `json:"p99_us"`
	P999us    float64 `json:"p999_us"`
	MaxUs     float64 `json:"max_us"`

	// P99Trace/P999Trace are the trace ids of the requests sitting at the
	// tail percentiles — paste one into the server's
	// /traces?id=<id>&format=chrome to see where that request's time went.
	P99Trace  string `json:"p99_trace_id,omitempty"`
	P999Trace string `json:"p999_trace_id,omitempty"`
}

// ServeSection is the whole "serve" document.
type ServeSection struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	Addr      string        `json:"addr"`
	N         int           `json:"n"`
	D         int           `json:"d"`
	K         int           `json:"k"`
	Seed      uint64        `json:"seed"`
	Golden    bool          `json:"golden_checked"`
	Note      string        `json:"note"`
	Shapes    []ShapeResult `json:"shapes"`
}

type loadConfig struct {
	addr    string
	dist    pointgen.Dist
	n, d, k int
	seed    uint64

	conns      int
	requests   int // per connection
	batch      int // queries per request (base size)
	swapMS     int // swap cadence for the swap shape
	golden     bool
	traceEvery int // every Nth request per connection is sampled (0 = never)
}

// loader owns the regenerated point set and, under -golden, one
// reference Batcher per connection (a Batcher is single-goroutine).
type loader struct {
	cfg    loadConfig
	points [][]float64
	refs   []*sepdc.Batcher

	client *http.Client
}

func newLoader(cfg loadConfig) (*loader, error) {
	pts := pointgen.Dedup(pointgen.MustGenerate(cfg.dist, cfg.n, cfg.d, xrand.New(cfg.seed)))
	points := make([][]float64, len(pts))
	for i, p := range pts {
		points[i] = p
	}
	l := &loader{
		cfg:    cfg,
		points: points,
		client: &http.Client{Timeout: 30 * time.Second},
	}
	if cfg.golden {
		// The reference tree seed is arbitrary — answers depend only on
		// the point set and k, the same invariant the server's hot swap
		// leans on.
		qs, err := sepdc.NewQueryStructure(points, cfg.k, cfg.seed+1_000_003)
		if err != nil {
			return nil, fmt.Errorf("reference structure: %w", err)
		}
		l.refs = make([]*sepdc.Batcher, cfg.conns)
		for i := range l.refs {
			l.refs[i] = qs.NewBatcher(1)
		}
	}
	return l, nil
}

// latSample is one successful request's wall time paired with the trace
// context it was sent under — what lets the tail percentiles name the
// exact requests behind them.
type latSample struct {
	ns    int64
	trace sepdc.TraceContext
}

// worker is one connection's deterministic request loop. Latencies are
// appended to lat (request wall time, nanoseconds).
type worker struct {
	l     *loader
	id    int
	shape string
	g     *xrand.RNG

	lat      []latSample
	requests int64
	queries  int64
	errors   int64
	rejected int64
	golden   int64

	queries2 [][]float64 // request scratch
	frame    []byte
}

// nextBatch fills w.queries2 with the shape's next request and returns
// the closed flag.
func (w *worker) nextBatch() bool {
	cfg := w.l.cfg
	size := cfg.batch
	closed := false
	switch w.shape {
	case "uniform":
		w.queries2 = w.queries2[:0]
		for i := 0; i < size; i++ {
			w.queries2 = append(w.queries2, w.g.InCube(cfg.d))
		}
	case "hot":
		// Hot-leaf skew: all queries jitter tightly around a few stored
		// anchors, so they descend to the same handful of leaves and
		// exercise the engine's query-blocked scan path.
		w.queries2 = w.queries2[:0]
		anchor := w.l.points[w.g.IntN(8)*len(w.l.points)/8]
		for i := 0; i < size; i++ {
			q := make([]float64, cfg.d)
			for c := range q {
				q[c] = anchor[c] + (w.g.Float64()-0.5)*0.02
			}
			w.queries2 = append(w.queries2, q)
		}
	case "mixed", "swap":
		// Mixed-k traffic: varying batch sizes, stored-point replays
		// (boundary-heavy for the closed-membership mode), alternating
		// open/closed requests.
		size = 1 + w.g.IntN(2*size)
		closed = w.g.IntN(2) == 0
		w.queries2 = w.queries2[:0]
		for i := 0; i < size; i++ {
			if i%3 == 0 {
				w.queries2 = append(w.queries2, w.l.points[w.g.IntN(len(w.l.points))])
			} else {
				w.queries2 = append(w.queries2, w.g.InCube(cfg.d))
			}
		}
	default:
		panic("unknown shape " + w.shape)
	}
	return closed
}

func (w *worker) run(url string) {
	for r := 0; r < w.l.cfg.requests; r++ {
		closed := w.nextBatch()
		w.frame = serveproto.AppendRequest(w.frame[:0], w.queries2, w.l.cfg.d, closed)
		// Deterministic per-request trace context: derived from the run
		// seed, shape, connection, and request ordinal — replaying the
		// same flags replays the same trace ids, so a tail trace id from
		// one run can be found again in the next. Every -trace-every'th
		// request is sampled (forces the server's per-query timed path).
		tc := sepdc.GenerateTrace(w.l.cfg.seed+hashShape(w.shape), uint64(w.id)<<32|uint64(r))
		if w.l.cfg.traceEvery > 0 && r%w.l.cfg.traceEvery == 0 {
			tc.Sampled = true
		}
		req, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(w.frame))
		if err != nil {
			w.errors++
			continue
		}
		req.Header.Set("Content-Type", binaryContentType)
		req.Header.Set("Traceparent", tc.Traceparent())
		start := time.Now()
		resp, err := w.l.client.Do(req)
		if err != nil {
			w.errors++
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		took := time.Since(start)
		if resp.StatusCode == http.StatusServiceUnavailable {
			w.rejected++
			continue
		}
		if err != nil || resp.StatusCode != http.StatusOK {
			w.errors++
			continue
		}
		dec, err := serveproto.DecodeResponse(raw)
		if err != nil || len(dec.Rows) != len(w.queries2) {
			w.errors++
			continue
		}
		w.lat = append(w.lat, latSample{ns: took.Nanoseconds(), trace: tc})
		w.requests++
		w.queries += int64(len(w.queries2))
		if w.l.refs != nil {
			w.check(dec, closed)
		}
	}
}

// check golden-verifies one response against the local reference.
func (w *worker) check(dec *serveproto.Response, closed bool) {
	ref := w.l.refs[w.id]
	var err error
	if closed {
		err = ref.RunClosed(w.queries2)
	} else {
		err = ref.Run(w.queries2)
	}
	if err != nil {
		w.golden++
		return
	}
	for i := range w.queries2 {
		want := ref.Result(i)
		got := dec.Rows[i]
		if len(got) != len(want) {
			w.golden++
			return
		}
		for j := range want {
			if int(got[j]) != want[j] {
				w.golden++
				return
			}
		}
	}
}

func percentile(sorted []latSample, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].ns) / 1e3 // ns -> us
}

// traceAt names the request at a percentile: the 32-hex trace id of the
// sample the percentile index lands on.
func traceAt(sorted []latSample, p float64) string {
	if len(sorted) == 0 {
		return ""
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx].trace.TraceIDString()
}

// runShape drives one traffic shape to completion and aggregates the
// per-connection measurements.
func (l *loader) runShape(shape string) (ShapeResult, error) {
	url := "http://" + l.cfg.addr
	workers := make([]*worker, l.cfg.conns)
	for i := range workers {
		workers[i] = &worker{
			l: l, id: i, shape: shape,
			// Per-connection seed: deterministic, distinct, and distinct
			// from the point-set seed.
			g:   xrand.New(l.cfg.seed*1_000_000_007 + uint64(i)*7919 + hashShape(shape)),
			lat: make([]latSample, 0, l.cfg.requests),
		}
	}

	var swaps atomic.Int64
	stop := make(chan struct{})
	var swapWG sync.WaitGroup
	if shape == "swap" {
		// Hot swaps on a fixed cadence for the whole run: the load's
		// answers must stay golden across every one of them.
		swapWG.Add(1)
		go func() {
			defer swapWG.Done()
			tick := time.NewTicker(time.Duration(l.cfg.swapMS) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					resp, err := l.client.Post(url+"/swap", "", nil)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode == http.StatusOK {
							swaps.Add(1)
						}
					}
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(url)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	swapWG.Wait()

	res := ShapeResult{
		Shape:   shape,
		Conns:   l.cfg.conns,
		Batch:   l.cfg.batch,
		Swaps:   swaps.Load(),
		Elapsed: float64(elapsed.Microseconds()) / 1e3,
	}
	var all []latSample
	for _, w := range workers {
		res.Requests += w.requests
		res.Queries += w.queries
		res.Errors += w.errors
		res.Rejected += w.rejected
		res.GoldenBad += w.golden
		all = append(all, w.lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ns < all[j].ns })
	res.QPS = float64(res.Queries) / elapsed.Seconds()
	res.P50us = percentile(all, 0.50)
	res.P90us = percentile(all, 0.90)
	res.P99us = percentile(all, 0.99)
	res.P999us = percentile(all, 0.999)
	res.P99Trace = traceAt(all, 0.99)
	res.P999Trace = traceAt(all, 0.999)
	if len(all) > 0 {
		res.MaxUs = float64(all[len(all)-1].ns) / 1e3
	}
	return res, nil
}

func hashShape(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// mergeBench merges the serve section into an existing BENCH_knn.json,
// preserving every other section verbatim (the file is knnbench's; this
// tool owns only the "serve" key).
func mergeBench(path string, sec *ServeSection) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(sec)
	if err != nil {
		return err
	}
	doc["serve"] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "knnserve host:port")
		dist     = flag.String("dist", string(pointgen.UniformCube), "point distribution (must match the server)")
		n        = flag.Int("n", 20000, "number of points (must match the server)")
		d        = flag.Int("d", 2, "dimension (must match the server)")
		k        = flag.Int("k", 3, "neighborhood size (must match the server)")
		seed     = flag.Uint64("seed", 1, "point-set seed (must match the server)")
		shapes   = flag.String("shapes", "uniform,hot,mixed,swap", "comma-separated traffic shapes")
		conns    = flag.Int("conns", 8, "concurrent connections")
		requests = flag.Int("requests", 200, "requests per connection per shape")
		batch    = flag.Int("batch", 16, "base queries per request")
		swapMS   = flag.Int("swap-every", 150, "swap cadence in ms for the swap shape")
		golden   = flag.Bool("golden", false, "verify every answer against a local reference structure")
		bench    = flag.String("bench", "", "merge results into this BENCH_knn.json (empty = stdout only)")
		traceN   = flag.Int("trace-every", 16, "mark every Nth request per connection sampled (0 = never); all requests carry deterministic traceparents")
	)
	flag.Parse()

	l, err := newLoader(loadConfig{
		addr: *addr, dist: pointgen.Dist(*dist),
		n: *n, d: *d, k: *k, seed: *seed,
		conns: *conns, requests: *requests, batch: *batch,
		swapMS: *swapMS, golden: *golden, traceEvery: *traceN,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnload:", err)
		os.Exit(1)
	}

	sec := &ServeSection{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Addr:      *addr,
		N:         *n, D: *d, K: *k, Seed: *seed,
		Golden: *golden,
		Note: "binary wire protocol, per-request wall-time percentiles under concurrent load; " +
			"rejected = 503 admission sheds (not errors); swap shape issues POST /swap on a fixed " +
			"cadence during load — golden_failures counts answers differing from a locally built " +
			"reference structure over the same point set",
	}
	failed := false
	for _, shape := range strings.Split(*shapes, ",") {
		shape = strings.TrimSpace(shape)
		if shape == "" {
			continue
		}
		res, err := l.runShape(shape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "knnload: shape %s: %v\n", shape, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-8s %6d req %8d queries  %8.0f q/s  p50 %7.0fus  p99 %7.0fus  p999 %7.0fus  errors %d  rejected %d  swaps %d  golden_bad %d\n",
			res.Shape, res.Requests, res.Queries, res.QPS, res.P50us, res.P99us, res.P999us,
			res.Errors, res.Rejected, res.Swaps, res.GoldenBad)
		if res.P99Trace != "" {
			fmt.Fprintf(os.Stderr, "%-8s tail traces: p99 %s  p999 %s\n", "", res.P99Trace, res.P999Trace)
		}
		if res.Errors > 0 || res.GoldenBad > 0 || res.Requests == 0 {
			failed = true
		}
		sec.Shapes = append(sec.Shapes, res)
	}

	enc, _ := json.MarshalIndent(sec, "", "  ")
	fmt.Println(string(enc))
	if *bench != "" {
		if err := mergeBench(*bench, sec); err != nil {
			fmt.Fprintln(os.Stderr, "knnload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "knnload: serve section merged into %s\n", *bench)
	}
	if failed {
		os.Exit(1)
	}
}
