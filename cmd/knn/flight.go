package main

import (
	"fmt"
	"time"

	"sepdc"
	"sepdc/internal/pointgen"
	"sepdc/internal/xrand"
)

// runFlight is the -flight serve loop: build the Section-3 query
// structure, attach the full diagnosis pipeline (serve observer,
// wide-event journal, flight recorder with a per-batch latency SLO),
// and serve batches while evaluating the burn rate between Runs. A
// KNN_CHAOS stall profile inflates batch latency through the Batcher's
// serving chaos seam, so the flight-smoke CI job can trip the SLO
// deterministically:
//
//	KNN_CHAOS="stall=3ms" knn -flight /tmp/fl -n 2000 -d 2 -k 3 \
//	    -rnn 64 -flight-latency 4ms -flight-batches 150
//
// Bundles land under the -flight directory; verify one with
// -verify-bundle.
func runFlight(dir string, n, d, k int, seed uint64, workers, queriesPerBatch, batches int, latency time.Duration) error {
	if queriesPerBatch <= 0 {
		queriesPerBatch = 256
	}
	pts := pointgen.Dedup(pointgen.MustGenerate(pointgen.UniformCube, n, d, xrand.New(seed)))
	points := make([][]float64, len(pts))
	for i, p := range pts {
		points[i] = p
	}
	qs, err := sepdc.NewQueryStructure(points, k, seed)
	if err != nil {
		return err
	}
	g := xrand.New(seed + 1)
	queries := make([][]float64, queriesPerBatch)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = points[g.IntN(len(points))]
		} else {
			queries[i] = g.InCube(d)
		}
	}

	obsv := sepdc.NewServeObserver("flight", sepdc.ServeObserverConfig{SampleEvery: 4})
	defer obsv.Close()
	jr := sepdc.NewQueryJournal("flight", sepdc.QueryJournalConfig{})
	defer jr.Close()
	fr, err := sepdc.NewFlightRecorder(sepdc.FlightConfig{
		Dir:              dir,
		LatencyObjective: latency,
		Target:           0.99,
		CaptureWindow:    100 * time.Millisecond,
		Cooldown:         time.Second,
	})
	if err != nil {
		return err
	}
	defer fr.Close()

	bt := qs.NewBatcher(workers)
	bt.Observe(obsv)
	bt.Journal(jr)
	if err := fr.WatchBatcher("flight_latency", bt, jr, obsv); err != nil {
		return err
	}

	fmt.Printf("flight serve loop: %d batches x %d queries, latency objective %v, bundles under %s\n",
		batches, queriesPerBatch, latency, dir)
	tripped := false
	for i := 0; i < batches; i++ {
		if err := bt.Run(queries); err != nil {
			return err
		}
		for _, s := range fr.Evaluate() {
			if s.Tripped && !tripped {
				tripped = true
				fmt.Printf("SLO %s tripped at batch %d: fast burn %.2f, slow burn %.2f (%d/%d bad)\n",
					s.Name, i+1, s.FastBurn, s.SlowBurn, s.Bad, s.Total)
			}
		}
	}
	fr.Close() // wait for async captures before reporting

	st := bt.Stats()
	snap := jr.Snapshot()
	fmt.Printf("served:       %d queries in %d batches\n", st.Queries, st.Batches)
	fmt.Printf("journal:      %d events published, %d retained, %d dropped\n",
		snap.Published, len(snap.Events), snap.Dropped)
	bundles := fr.Bundles()
	if len(bundles) == 0 {
		fmt.Println("bundles:      none (SLO never tripped)")
		return nil
	}
	for _, b := range bundles {
		status := "ok"
		if err := sepdc.CheckFlightBundle(b); err != nil {
			status = err.Error()
		}
		fmt.Printf("bundle:       %s (%s)\n", b, status)
	}
	return nil
}

// verifyBundle is -verify-bundle: validate a captured flight bundle
// (metadata, journal JSONL, trace/profile evidence) and report.
func verifyBundle(dir string) error {
	if err := sepdc.CheckFlightBundle(dir); err != nil {
		return err
	}
	fmt.Printf("bundle %s: complete\n", dir)
	return nil
}
