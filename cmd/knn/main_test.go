package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sepdc"
)

func TestReadPoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.txt")
	content := "# comment line\n1.0 2.0\n\n3.5 -4.25\n  7 8  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := readPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("read %d points, want 3", len(pts))
	}
	if pts[1][0] != 3.5 || pts[1][1] != -4.25 {
		t.Errorf("point 1 = %v", pts[1])
	}
}

func TestReadPointsErrors(t *testing.T) {
	if _, err := readPoints(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("1.0 not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readPoints(bad); err == nil {
		t.Error("malformed coordinate accepted")
	} else if !strings.Contains(err.Error(), "bad coordinate") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestWriteGraph(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 0}, {10, 0}, {11, 0}}
	g, err := sepdc.BuildKNNGraph(points, 1, &sepdc.Options{Algorithm: sepdc.Brute})
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "graph.txt")
	if err := writeGraph(out, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, line := range []string{"0: 1", "1: 0", "2: 3", "3: 2"} {
		if !strings.Contains(text, line) {
			t.Errorf("graph output missing %q:\n%s", line, text)
		}
	}
}
