// Command knn computes a k-nearest-neighbor graph and prints its summary,
// exercising the library's public API end to end:
//
//	knn -n 10000 -d 3 -k 4 -algo sphere -dist uniform-cube
//	knn -input points.txt -k 2 -algo hyperplane -out graph.txt
//	knn -n 50000 -k 4 -obs -trace build.json   # Chrome trace + phase report
//	knn -n 50000 -k 4 -debug-addr :8080        # /metrics + expvar + pprof
//	knn -n 5000 -d 3 -k 4 -audit               # paper-invariant audit table
//
// Input files hold one point per line, whitespace-separated coordinates.
// With -out, the graph is written as "i: j1 j2 j3 ..." adjacency lines.
// Open a -trace file in chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"sepdc"
	"sepdc/internal/obs"
	"sepdc/internal/obs/runtimeobs"
	"sepdc/internal/obs/slo"
	"sepdc/internal/pointgen"
	"sepdc/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "knn:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 10000, "number of generated points (ignored with -input)")
	d := flag.Int("d", 2, "dimension of generated points")
	k := flag.Int("k", 2, "neighbors per point")
	algo := flag.String("algo", "sphere", "algorithm: sphere | hyperplane | kdtree | brute")
	dist := flag.String("dist", "uniform-cube", "generator distribution (see pointgen)")
	input := flag.String("input", "", "read points from file instead of generating")
	out := flag.String("out", "", "write adjacency lists to file")
	seed := flag.Uint64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "goroutine parallelism (0 = GOMAXPROCS)")
	observe := flag.Bool("obs", false, "collect and print the build's phase/counter report")
	trace := flag.String("trace", "", "write Chrome trace_event JSON of the build to file (implies -obs)")
	rnn := flag.Int("rnn", 0, "after the build, serve this many reverse-nearest-neighbor queries through the batched query structure and print serving stats")
	audit := flag.Bool("audit", false, "audit the paper's invariants (ι(S), split balance, depth, punt rate, space, query cost) over the uniform-ball, jittered-grid, and clustered generators at -n/-d/-k; exits nonzero on any violation")
	flightDir := flag.String("flight", "", "flight-recorder serve loop: serve batched queries at -n/-d/-k with the SLO engine live, capturing diagnostic bundles under this directory when the latency burn rate trips")
	flightLatency := flag.Duration("flight-latency", 25*time.Millisecond, "per-batch latency SLO objective for -flight")
	flightBatches := flag.Int("flight-batches", 200, "batches to serve in the -flight loop")
	verifyBundleDir := flag.String("verify-bundle", "", "validate a captured flight bundle directory and exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /statsz, /journal, expvar (/debug/vars) and pprof (/debug/pprof) on this address")
	debugHold := flag.Duration("debug-hold", 0, "keep the process (and -debug-addr server) alive this long after the build")
	timeout := flag.Duration("timeout", 0, "abandon the build after this long (0 = no limit)")
	flag.Parse()

	if *verifyBundleDir != "" {
		return verifyBundle(*verifyBundleDir)
	}

	// Say which distance-kernel tier dispatch resolved (and publish it
	// on /statsz), so a run can confirm the assembly kernels engaged.
	tier, cpu := sepdc.KernelInfo()
	obs.SetInfo("kernel_tier", tier)
	obs.SetInfo("cpu_features", cpu)
	fmt.Printf("kernels: tier=%s cpu=%s\n", tier, cpu)

	if *debugAddr != "" {
		obs.EnableGlobal()
		obs.PublishExpvar()
		// Runtime telemetry rides along on every scrape: GC pauses,
		// scheduler latency, heap, mutex wait as sepdc_runtime_* gauges.
		rt := runtimeobs.New().Start(5 * time.Second)
		defer rt.Close()
		mh := sepdc.MetricsHandler()
		http.Handle("/metrics", mh)
		http.Handle("/statsz", mh)
		http.Handle("/journal", mh)
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "knn: debug server:", err)
			}
		}()
		fmt.Printf("debug server: http://%s/metrics, /statsz, /journal, /debug/vars, /debug/pprof\n", *debugAddr)
	}

	if *flightDir != "" {
		err := runFlight(*flightDir, *n, *d, *k, *seed, *workers, *rnn, *flightBatches, *flightLatency)
		if *debugHold > 0 {
			fmt.Printf("holding for %v (debug endpoints stay up)...\n", *debugHold)
			time.Sleep(*debugHold)
		}
		return err
	}

	if *audit {
		err := runAudit(*n, *d, *k, *seed, *workers)
		if *debugHold > 0 {
			fmt.Printf("holding for %v (debug endpoints stay up)...\n", *debugHold)
			time.Sleep(*debugHold)
		}
		return err
	}

	var points [][]float64
	if *input != "" {
		var err error
		points, err = readPoints(*input)
		if err != nil {
			return err
		}
	} else {
		pts, err := pointgen.Generate(pointgen.Dist(*dist), *n, *d, xrand.New(*seed))
		if err != nil {
			return err
		}
		points = make([][]float64, len(pts))
		for i, p := range pts {
			points[i] = p
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	g, err := sepdc.BuildKNNGraphContext(ctx, points, *k, &sepdc.Options{
		Algorithm: sepdc.Algorithm(*algo),
		Seed:      *seed,
		Workers:   *workers,
		Observe:   *observe,
		Trace:     *trace != "",
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	_, comps := g.Components()
	fmt.Printf("points:       %d (d=%d)\n", g.NumPoints(), len(points[0]))
	fmt.Printf("k:            %d\n", g.K())
	fmt.Printf("algorithm:    %s\n", *algo)
	fmt.Printf("edges:        %d\n", g.NumEdges())
	fmt.Printf("components:   %d\n", comps)
	fmt.Printf("wall time:    %v\n", elapsed.Round(time.Microsecond))
	if st := g.Stats(); st.SimulatedSteps > 0 {
		fmt.Printf("sim steps:    %d (vector-model parallel time)\n", st.SimulatedSteps)
		fmt.Printf("sim work:     %d\n", st.SimulatedWork)
		fmt.Printf("sep trials:   %d\n", st.SeparatorTrials)
		fmt.Printf("fast corr:    %d, punts: %d\n", st.FastCorrections, st.Punts)
	}

	if rep := g.Stats().Report; rep != nil {
		if err := rep.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if *trace != "" {
		if err := writeTrace(*trace, g); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *trace)
	}

	if *rnn > 0 {
		if err := serveRNN(points, *k, *seed, *rnn); err != nil {
			return err
		}
	}
	if *out != "" {
		if err := writeGraph(*out, g); err != nil {
			return err
		}
		fmt.Printf("graph written to %s\n", *out)
	}
	if *debugHold > 0 {
		fmt.Printf("holding for %v (debug endpoints stay up)...\n", *debugHold)
		time.Sleep(*debugHold)
	}
	return nil
}

// serveRNN demos the Section-3 query structure: build it over the same
// points, then answer n reverse-nearest-neighbor queries ("whose
// k-neighborhood balls contain q?") through the zero-alloc batched engine.
// Queries mix stored points with fresh uniform points from the unit cube.
func serveRNN(points [][]float64, k int, seed uint64, n int) error {
	start := time.Now()
	qs, err := sepdc.NewQueryStructure(points, k, seed)
	if err != nil {
		return err
	}
	buildTime := time.Since(start)
	d := len(points[0])
	g := xrand.New(seed + 1)
	queries := make([][]float64, n)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = points[g.IntN(len(points))]
		} else {
			queries[i] = g.InCube(d)
		}
	}
	bt := qs.NewBatcher(0)
	if err := bt.Run(queries); err != nil { // warm-up batch
		return err
	}
	start = time.Now()
	if err := bt.Run(queries); err != nil {
		return err
	}
	serveTime := time.Since(start)
	covered := 0
	for i := 0; i < bt.Len(); i++ {
		covered += len(bt.Result(i))
	}
	st := qs.Stats()
	bst := bt.Stats()
	fmt.Println("--- reverse-NN query serving ---")
	fmt.Printf("structure:    %d leaves, height %d, %d stored balls (built in %v)\n",
		st.Leaves, st.Height, st.StoredBalls, buildTime.Round(time.Microsecond))
	fmt.Printf("queries:      %d in %v (%.0f qps, steady state)\n",
		n, serveTime.Round(time.Microsecond), float64(n)/serveTime.Seconds())
	fmt.Printf("covering:     %.2f balls/query mean\n", float64(covered)/float64(n))
	fmt.Printf("traversal:    %.1f nodes visited, %.1f leaf candidates scanned per query\n",
		float64(bst.NodesVisited)/float64(bst.Queries), float64(bst.LeafScanned)/float64(bst.Queries))
	return nil
}

// runAudit builds the query structure over each of the paper's
// acceptance generators and re-measures the invariants the analysis
// proves: Theorem 2.1's intersection-number bound, the δ-split and
// Punting-Lemma depth, Lemma 6.1's linear space, and Theorem 3.1's
// per-query cost (sampled over live probes). Each report is published
// as sepdc_audit_* gauges (visible on -debug-addr /metrics) and
// rendered as a pass/fail table. Probe serving runs through an observed
// Batcher so the audit run also exercises the serving telemetry.
func runAudit(n, d, k int, seed uint64, workers int) error {
	gens := []pointgen.Dist{pointgen.UniformBall, pointgen.JitteredGrid, pointgen.Clustered}
	obsv := sepdc.NewServeObserver("audit", sepdc.ServeObserverConfig{SampleEvery: 4})
	jr := sepdc.NewQueryJournal("audit", sepdc.QueryJournalConfig{})
	failed := 0
	var lastBatcher *sepdc.Batcher
	for _, gen := range gens {
		pts := pointgen.Dedup(pointgen.MustGenerate(gen, n, d, xrand.New(seed)))
		points := make([][]float64, len(pts))
		for i, p := range pts {
			points[i] = p
		}
		qs, err := sepdc.NewQueryStructure(points, k, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", gen, err)
		}
		g := xrand.New(seed + 1)
		probes := make([][]float64, 500)
		for i := range probes {
			if i%3 == 0 {
				probes[i] = points[g.IntN(len(points))]
			} else {
				probes[i] = g.InCube(d)
			}
		}
		bt := qs.NewBatcher(workers)
		bt.Observe(obsv)
		bt.Journal(jr)
		lastBatcher = bt
		if err := bt.Run(probes); err != nil {
			return fmt.Errorf("%s: %w", gen, err)
		}
		rep, err := qs.Audit(probes, sepdc.AuditConfig{})
		if err != nil {
			return fmt.Errorf("%s: %w", gen, err)
		}
		rep.Gen = string(gen)
		rep.Publish()
		if err := rep.WriteTable(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if !rep.Pass {
			failed++
		}
	}
	// Publish the sepdc_slo_* gauge family over the audit's serving
	// traffic (one evaluation of a 100ms per-batch latency objective) so
	// a scrape of the audit run carries the full observability surface —
	// scripts/metrics_audit.sh lints and asserts these series.
	if lastBatcher != nil {
		bst := lastBatcher.Stats()
		ev, err := slo.New([]slo.Objective{{
			Name:   "audit_batch_latency",
			Source: slo.HistSource(func() obs.Hist { return bst.Latency }, (100 * time.Millisecond).Nanoseconds()),
		}}, nil)
		if err != nil {
			return err
		}
		ev.Evaluate()
	}
	if failed > 0 {
		return fmt.Errorf("audit: %d of %d generators violated a paper invariant", failed, len(gens))
	}
	return nil
}

func writeTrace(path string, g *sepdc.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := g.WriteTrace(w); err != nil {
		return err
	}
	return w.Flush()
}

func readPoints(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var points [][]float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		p := make([]float64, len(fields))
		for i, fstr := range fields {
			v, err := strconv.ParseFloat(fstr, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad coordinate %q", path, lineNo, fstr)
			}
			p[i] = v
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return points, nil
}

func writeGraph(path string, g *sepdc.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i := 0; i < g.NumPoints(); i++ {
		fmt.Fprintf(w, "%d:", i)
		for _, j := range g.Adjacency(i) {
			fmt.Fprintf(w, " %d", j)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
