// Command knn computes a k-nearest-neighbor graph and prints its summary,
// exercising the library's public API end to end:
//
//	knn -n 10000 -d 3 -k 4 -algo sphere -dist uniform-cube
//	knn -input points.txt -k 2 -algo hyperplane -out graph.txt
//
// Input files hold one point per line, whitespace-separated coordinates.
// With -out, the graph is written as "i: j1 j2 j3 ..." adjacency lines.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sepdc"
	"sepdc/internal/pointgen"
	"sepdc/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "knn:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 10000, "number of generated points (ignored with -input)")
	d := flag.Int("d", 2, "dimension of generated points")
	k := flag.Int("k", 2, "neighbors per point")
	algo := flag.String("algo", "sphere", "algorithm: sphere | hyperplane | kdtree | brute")
	dist := flag.String("dist", "uniform-cube", "generator distribution (see pointgen)")
	input := flag.String("input", "", "read points from file instead of generating")
	out := flag.String("out", "", "write adjacency lists to file")
	seed := flag.Uint64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "goroutine parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	var points [][]float64
	if *input != "" {
		var err error
		points, err = readPoints(*input)
		if err != nil {
			return err
		}
	} else {
		pts, err := pointgen.Generate(pointgen.Dist(*dist), *n, *d, xrand.New(*seed))
		if err != nil {
			return err
		}
		points = make([][]float64, len(pts))
		for i, p := range pts {
			points[i] = p
		}
	}

	start := time.Now()
	g, err := sepdc.BuildKNNGraph(points, *k, &sepdc.Options{
		Algorithm: sepdc.Algorithm(*algo),
		Seed:      *seed,
		Workers:   *workers,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	_, comps := g.Components()
	fmt.Printf("points:       %d (d=%d)\n", g.NumPoints(), len(points[0]))
	fmt.Printf("k:            %d\n", g.K())
	fmt.Printf("algorithm:    %s\n", *algo)
	fmt.Printf("edges:        %d\n", g.NumEdges())
	fmt.Printf("components:   %d\n", comps)
	fmt.Printf("wall time:    %v\n", elapsed.Round(time.Microsecond))
	if st := g.Stats(); st.SimulatedSteps > 0 {
		fmt.Printf("sim steps:    %d (vector-model parallel time)\n", st.SimulatedSteps)
		fmt.Printf("sim work:     %d\n", st.SimulatedWork)
		fmt.Printf("sep trials:   %d\n", st.SeparatorTrials)
		fmt.Printf("fast corr:    %d, punts: %d\n", st.FastCorrections, st.Punts)
	}

	if *out != "" {
		if err := writeGraph(*out, g); err != nil {
			return err
		}
		fmt.Printf("graph written to %s\n", *out)
	}
	return nil
}

func readPoints(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var points [][]float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		p := make([]float64, len(fields))
		for i, fstr := range fields {
			v, err := strconv.ParseFloat(fstr, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad coordinate %q", path, lineNo, fstr)
			}
			p[i] = v
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return points, nil
}

func writeGraph(path string, g *sepdc.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i := 0; i < g.NumPoints(); i++ {
		fmt.Fprintf(w, "%d:", i)
		for _, j := range g.Adjacency(i) {
			fmt.Fprintf(w, " %d", j)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
