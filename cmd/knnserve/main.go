// Command knnserve is the serving front end for the Section-3 covering-
// ball query structure: an HTTP server owning per-strand replicas of one
// frozen snapshot, coalescing incoming queries into batched engine
// passes, and swapping in freshly rebuilt snapshots without a serving
// stall (POST /swap — epoch/RCU semantics via internal/snapshot).
//
// Quickstart:
//
//	knnserve -addr :8080 -n 20000 -d 2 -k 3 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/query \
//	    -d '{"queries":[[0.5,0.5],[0.25,0.75]],"closed":false}'
//	curl -s -X POST localhost:8080/swap
//	curl -s localhost:8080/metrics | grep sepdc_serve
//
// The wire-efficient path POSTs the internal/serveproto binary frame
// with Content-Type application/x-sepdc-query; cmd/knnload speaks it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sepdc"
	"sepdc/internal/obs"
	"sepdc/internal/pointgen"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dist     = flag.String("dist", string(pointgen.UniformCube), "point distribution (uniform-cube, gaussian, clustered, annulus, ...)")
		n        = flag.Int("n", 20000, "number of points")
		d        = flag.Int("d", 2, "dimension")
		k        = flag.Int("k", 3, "neighborhood size")
		seed     = flag.Uint64("seed", 1, "point-set and initial tree seed")
		replicas = flag.Int("replicas", 0, "serving replicas / coalescer strands (0 = 2)")
		workers  = flag.Int("workers", 0, "Batcher strands per replica (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "per-replica pending-request queue bound (0 = 256)")
		batch    = flag.Int("batch", 0, "coalesced queries per pass before cutover (0 = 512)")
		deadline = flag.Duration("deadline", 0, "batch gather deadline (0 = 2ms)")
		sample   = flag.Int("sample", 0, "observer sampling: time 1 in N queries (0 = 16)")
		blockW   = flag.Int("block-width", 0, "leaf-scan query-blocking width, 1..16 (0 = engine default)")
		ringSize = flag.Int("journal-ring", 0, "wide-event journal ring capacity per strand; watch sepdc_journal_overwrite_rate (0 = 4096)")
		flight   = flag.String("flight", "", "flight-recorder bundle directory (empty = off)")
		flightLa = flag.Duration("flight-latency", 0, "flight SLO per-pass latency objective (0 = 100ms)")
	)
	flag.Parse()

	obs.EnableGlobal()
	srv, err := newServer(serverConfig{
		dist:          pointgen.Dist(*dist),
		n:             *n,
		d:             *d,
		k:             *k,
		seed:          *seed,
		replicas:      *replicas,
		workers:       *workers,
		queue:         *queue,
		maxBatch:      *batch,
		deadline:      *deadline,
		sample:        *sample,
		blockW:        *blockW,
		ringSize:      *ringSize,
		flightDir:     *flight,
		flightLatency: *flightLa,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnserve:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.handler()}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// Log the resolved distance-kernel tier (and publish it on /statsz)
	// so production can confirm the assembly kernels actually engaged.
	tier, cpu := sepdc.KernelInfo()
	obs.SetInfo("kernel_tier", tier)
	obs.SetInfo("cpu_features", cpu)
	fmt.Printf("knnserve: kernels tier=%s cpu=%s\n", tier, cpu)
	fmt.Printf("knnserve: %d points, d=%d k=%d, %d replicas, serving on %s\n",
		len(srv.points), *d, *k, srv.cfg.replicas, *addr)

	select {
	case err := <-done:
		fmt.Fprintln(os.Stderr, "knnserve:", err)
		srv.Close()
		os.Exit(1)
	case <-sig:
	}

	// Graceful stop: stop accepting, drain in-flight handlers, THEN stop
	// the coalescers — server.Close requires no handler be mid-dispatch.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	srv.Close()
}
