package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sepdc"
	"sepdc/internal/obs"
	"sepdc/internal/serveproto"
	"sepdc/internal/xrand"
)

// serveChaosSpecs mirrors the library's chaos profile table: every
// fault-injection route the build and serving paths own. The golden e2e
// contract must hold under each.
var serveChaosSpecs = map[string]string{
	"clean":        "",
	"sep-fail-all": "sep-fail=all",
	"punt-all":     "punt=all",
	"march-abort":  "march-abort=all",
	"march-level":  "march-level=1",
	"kitchen-sink": "sep-fail=all;punt=all;march-level=1;stall=200us",
}

func testConfig() serverConfig {
	return serverConfig{
		n: 900, d: 2, k: 3, seed: 11,
		replicas: 2, workers: 2,
		queue: 64, maxBatch: 64, deadline: time.Millisecond,
	}
}

// newTestServer boots a server plus an httptest front end and tears both
// down in order (HTTP first — Close requires no in-flight handlers).
func newTestServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// goldenBatcher builds the reference answers the direct way: a Batcher
// on a structure over the server's own retained points. The tree seed
// deliberately differs from every seed the server will ever use —
// covering-ball answers are a function of the point set and k only,
// which is exactly what makes hot snapshot swaps answer-preserving.
func goldenBatcher(t *testing.T, srv *server) *sepdc.Batcher {
	t.Helper()
	qs, err := sepdc.NewQueryStructure(srv.points, srv.cfg.k, 987654321)
	if err != nil {
		t.Fatal(err)
	}
	return qs.NewBatcher(2)
}

func golden(t *testing.T, bt *sepdc.Batcher, queries [][]float64, closed bool) [][]int {
	t.Helper()
	var err error
	if closed {
		err = bt.RunClosed(queries)
	} else {
		err = bt.Run(queries)
	}
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int, len(queries))
	for i := range queries {
		out[i] = append([]int{}, bt.Result(i)...)
	}
	return out
}

func testQueries(srv *server, n int, seed uint64) [][]float64 {
	g := xrand.New(seed)
	out := make([][]float64, n)
	for i := range out {
		if i%3 == 0 {
			out[i] = srv.points[g.IntN(len(srv.points))]
		} else {
			out[i] = g.InCube(srv.cfg.d)
		}
	}
	return out
}

func postJSON(t *testing.T, client *http.Client, url string, queries [][]float64, closed bool) ([][]int, uint64) {
	t.Helper()
	body, _ := json.Marshal(jsonQueryRequest{Queries: queries, Closed: closed})
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /query: %s: %s", resp.Status, msg)
	}
	var jr jsonQueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Closed != closed {
		t.Fatalf("response closed = %v, want %v", jr.Closed, closed)
	}
	return jr.Results, jr.Epoch
}

func postBinary(t *testing.T, client *http.Client, url string, queries [][]float64, dim int, closed bool) ([][]uint32, uint64) {
	t.Helper()
	frame := serveproto.AppendRequest(nil, queries, dim, closed)
	resp, err := client.Post(url+"/query", binaryContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /query (binary): %s: %s", resp.Status, msg)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := serveproto.DecodeResponse(raw)
	if err != nil {
		t.Fatalf("response frame: %v", err)
	}
	if dec.Closed != closed {
		t.Fatalf("response closed = %v, want %v", dec.Closed, closed)
	}
	return dec.Rows, dec.Epoch
}

func sameRowInts(got []int, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func sameRowU32(got []uint32, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if int(got[i]) != want[i] {
			return false
		}
	}
	return true
}

// TestServeGoldenE2E is the end-to-end golden contract: under every
// chaos profile, answers served over HTTP — both the JSON and the binary
// wire path, open and closed membership — must be element-for-element
// identical to a direct Batcher over the same point set.
func TestServeGoldenE2E(t *testing.T) {
	for name, spec := range serveChaosSpecs {
		t.Run(name, func(t *testing.T) {
			if spec != "" {
				t.Setenv("KNN_CHAOS", spec)
			}
			srv, ts := newTestServer(t, testConfig())
			ref := goldenBatcher(t, srv)
			queries := testQueries(srv, 120, 71)

			for _, closed := range []bool{false, true} {
				want := golden(t, ref, queries, closed)
				gotJ, _ := postJSON(t, ts.Client(), ts.URL, queries, closed)
				if len(gotJ) != len(want) {
					t.Fatalf("JSON: %d rows, want %d", len(gotJ), len(want))
				}
				for i := range want {
					if !sameRowInts(gotJ[i], want[i]) {
						t.Fatalf("JSON closed=%v query %d: %v, want %v", closed, i, gotJ[i], want[i])
					}
				}
				gotB, _ := postBinary(t, ts.Client(), ts.URL, queries, srv.cfg.d, closed)
				for i := range want {
					if !sameRowU32(gotB[i], want[i]) {
						t.Fatalf("binary closed=%v query %d: %v, want %v", closed, i, gotB[i], want[i])
					}
				}
			}
		})
	}
}

// TestServeValidation: malformed requests are rejected at the front
// door with 400s, not passed into the engine.
func TestServeValidation(t *testing.T) {
	srv, ts := newTestServer(t, testConfig())
	client := ts.Client()
	cases := []struct {
		name string
		ct   string
		body []byte
	}{
		{"bad json", "application/json", []byte(`{"queries":[[0.1`)},
		{"wrong dim", "application/json", []byte(`{"queries":[[0.1,0.2,0.3]]}`)},
		{"non-finite", "application/json", []byte(`{"queries":[[0.1,1e999]]}`)},
		{"bad magic", binaryContentType, []byte("NOPExxxxxxxxxxxx")},
		{"binary wrong dim", binaryContentType,
			serveproto.AppendRequest(nil, [][]float64{{1, 2, 3}}, 3, false)},
	}
	for _, tc := range cases {
		resp, err := client.Post(ts.URL+"/query", tc.ct, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	_ = srv
}

// TestServeSwapMidStream drives waves of queries with snapshot swaps
// interleaved between and DURING them: every answer stays golden, the
// epoch advances, and every superseded generation is released with zero
// passes still pinned to it.
func TestServeSwapMidStream(t *testing.T) {
	srv, ts := newTestServer(t, testConfig())

	var releases atomic.Int64
	var badReleases atomic.Int64
	srv.onRelease = func(g *generation) {
		releases.Add(1)
		if g.inflight.Load() != 0 {
			badReleases.Add(1)
		}
	}

	ref := goldenBatcher(t, srv)
	queries := testQueries(srv, 80, 133)
	want := golden(t, ref, queries, false)
	wantClosed := golden(t, ref, queries, true)

	client := ts.Client()
	epoch0 := srv.Epoch()

	const swaps = 5
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; i < swaps; i++ {
			resp, err := client.Post(ts.URL+"/swap", "", nil)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(time.Millisecond)
		}
	}()

	for wave := 0; wave < 12; wave++ {
		got, _ := postJSON(t, client, ts.URL, queries, false)
		for i := range want {
			if !sameRowInts(got[i], want[i]) {
				t.Fatalf("wave %d query %d: %v, want %v", wave, i, got[i], want[i])
			}
		}
		gotC, _ := postBinary(t, client, ts.URL, queries, srv.cfg.d, true)
		for i := range wantClosed {
			if !sameRowU32(gotC[i], wantClosed[i]) {
				t.Fatalf("wave %d closed query %d: %v, want %v", wave, i, gotC[i], wantClosed[i])
			}
		}
	}
	swapWG.Wait()

	if got := srv.Epoch(); got <= epoch0 {
		t.Errorf("epoch did not advance: %d -> %d", epoch0, got)
	}
	if got := srv.swapped.Load(); got != swaps {
		t.Errorf("swaps recorded = %d, want %d", got, swaps)
	}
	if badReleases.Load() != 0 {
		t.Errorf("%d generations released with passes still pinned", badReleases.Load())
	}

	// Swapped-out generations (all but the live one) must have drained
	// and released by now — swap drops the publisher ref, and no pass
	// outlives its HTTP request.
	deadline := time.Now().Add(2 * time.Second)
	for releases.Load() < swaps && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := releases.Load(); got != swaps {
		t.Errorf("released %d generations, want %d (stale snapshot leak)", got, swaps)
	}
}

// TestServeRaceHammer is the -race workout: concurrent query traffic on
// both wire formats, repeated snapshot swaps, and a telemetry observer
// snapshotting mid-flight. Run via `make race-serve`. Correctness of
// answers is golden-checked under fire; release ordering is asserted by
// the inflight counter.
func TestServeRaceHammer(t *testing.T) {
	cfg := testConfig()
	cfg.n = 500
	srv, ts := newTestServer(t, cfg)

	var badReleases atomic.Int64
	srv.onRelease = func(g *generation) {
		if g.inflight.Load() != 0 {
			badReleases.Add(1)
		}
	}

	ref := goldenBatcher(t, srv)
	queries := testQueries(srv, 40, 7)
	want := golden(t, ref, queries, false)
	wantClosed := golden(t, ref, queries, true)

	client := ts.Client()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}

	const clients, rounds = 4, 30
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				closed := (c+i)%2 == 0
				if c%2 == 0 {
					rows, _ := postBinaryE(client, ts.URL, queries, srv.cfg.d, closed)
					if rows == nil {
						continue // shed under saturation is legal
					}
					ws := want
					if closed {
						ws = wantClosed
					}
					for qi := range ws {
						if !sameRowU32(rows[qi], ws[qi]) {
							report("client %d round %d query %d: wrong answer", c, i, qi)
							return
						}
					}
				} else {
					body, _ := json.Marshal(jsonQueryRequest{Queries: queries, Closed: closed})
					resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
					if err != nil {
						report("client %d: %v", c, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
						report("client %d: status %d", c, resp.StatusCode)
						return
					}
				}
			}
		}(c)
	}

	// Swapper: rebuild and publish as fast as the build allows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, _, err := srv.Swap(srv.cfg.seed + uint64(100+i)); err != nil {
				report("swap %d: %v", i, err)
				return
			}
		}
	}()

	// Observer: concurrent telemetry snapshots across the swaps.
	obsDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(obsDone)
		for i := 0; i < 200; i++ {
			if rec := obs.LookupServe(observerName(0)); rec != nil {
				rec.Snapshot()
			}
			for _, j := range srv.journals {
				j.Snapshot()
			}
		}
	}()

	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if badReleases.Load() != 0 {
		t.Fatalf("%d generations released while passes were pinned", badReleases.Load())
	}
}

// postBinaryE is postBinary without the test dependency: nil rows on
// any non-200 (the race hammer tolerates 503 shedding).
func postBinaryE(client *http.Client, url string, queries [][]float64, dim int, closed bool) ([][]uint32, uint64) {
	frame := serveproto.AppendRequest(nil, queries, dim, closed)
	resp, err := client.Post(url+"/query", binaryContentType, bytes.NewReader(frame))
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, 0
	}
	dec, err := serveproto.DecodeResponse(raw)
	if err != nil {
		return nil, 0
	}
	return dec.Rows, dec.Epoch
}

// TestCoalescerSteadyStateAllocs pins the coalescer's zero-allocation
// steady state: once ops and arenas are warm, submit → coalesce → serve
// → signal allocates nothing. The HTTP layer is bypassed (requests and
// JSON allocate by nature); this is the layer the issue holds to zero.
func TestCoalescerSteadyStateAllocs(t *testing.T) {
	cfg := testConfig()
	cfg.replicas = 1
	cfg.maxBatch = 8 // an 8-query op skips the gather timer entirely
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	queries := testQueries(srv, 8, 99)
	o := newOp()
	o.queries = queries
	run := func() {
		if !srv.reps[0].submit(o) {
			t.Fatal("queue full with no traffic")
		}
		<-o.done
		if o.err != nil {
			t.Fatal(o.err)
		}
	}
	for i := 0; i < 1000; i++ { // warm engine arenas, op arena, telemetry rings
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("coalescer steady state allocates: %.2f allocs/op", avg)
	}
}

// TestAdmissionControl: the bounded queue is the admission valve — a
// replica whose queue is full refuses the op, and dispatch surfaces the
// refusal (503 at the HTTP layer) instead of queueing unboundedly.
func TestAdmissionControl(t *testing.T) {
	cfg := testConfig()
	cfg.replicas = 1
	cfg.queue = 1
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The valve is replica.submit; test it directly on an unstarted
	// replica so the queue stays full deterministically.
	r := &replica{srv: srv, idx: 0, ch: make(chan *op, 1), stop: make(chan struct{})}
	o1, o2 := newOp(), newOp()
	if !r.submit(o1) {
		t.Fatal("first submit refused on empty queue")
	}
	if r.submit(o2) {
		t.Fatal("second submit accepted past the queue bound")
	}
}

// TestServeHealthz: the health endpoint reports the serving shape and
// progresses its counters.
func TestServeHealthz(t *testing.T) {
	srv, ts := newTestServer(t, testConfig())
	postJSON(t, ts.Client(), ts.URL, testQueries(srv, 10, 3), false)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" {
		t.Fatalf("status = %v", doc["status"])
	}
	if doc["passes"].(float64) < 1 {
		t.Fatalf("no passes recorded: %v", doc)
	}
	if int(doc["points"].(float64)) != len(srv.points) {
		t.Fatalf("points = %v, want %d", doc["points"], len(srv.points))
	}
}

// TestServeMetricsExposed: the serving process exposes its per-replica
// observers on /metrics after traffic.
func TestServeMetricsExposed(t *testing.T) {
	srv, ts := newTestServer(t, testConfig())
	postJSON(t, ts.Client(), ts.URL, testQueries(srv, 32, 5), false)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("sepdc_serve_serve0_")) &&
		!bytes.Contains(body, []byte("sepdc_serve_serve1_")) {
		t.Fatalf("/metrics missing serve observer series:\n%.2000s", body)
	}
}

// TestServeTraceEndToEnd: a request carrying a W3C traceparent is
// traceable through the whole serving path — the context is echoed on
// the response, the request's span summary appears on /traces, every
// per-query journal event is stamped with the trace id and a derived
// child span, and the trace renders as Chrome trace_event JSON.
func TestServeTraceEndToEnd(t *testing.T) {
	const (
		hdr     = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
		traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	)
	srv, ts := newTestServer(t, testConfig())
	client := ts.Client()
	queries := testQueries(srv, 6, 55)

	body, _ := json.Marshal(jsonQueryRequest{Queries: queries})
	req, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", hdr)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: %s", resp.Status)
	}
	if got := resp.Header.Get("Traceparent"); got != hdr {
		t.Fatalf("traceparent echo %q, want %q", got, hdr)
	}

	// The request's queue → coalesce → pass span summary is on /traces.
	get := func(path string) (int, string) {
		t.Helper()
		r, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r.StatusCode, string(b)
	}
	status, traces := get("/traces?id=" + traceID)
	if status != http.StatusOK {
		t.Fatalf("/traces?id=: %d: %s", status, traces)
	}
	var line struct {
		Engine  string `json:"engine"`
		TraceID string `json:"trace_id"`
		SpanID  string `json:"span_id"`
		Sampled bool   `json:"sampled"`
		QueueNs int64  `json:"queue_ns"`
		PassNs  int64  `json:"pass_ns"`
		TotalNs int64  `json:"total_ns"`
		Queries int32  `json:"queries"`
	}
	if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(traces), "\n")[0]), &line); err != nil {
		t.Fatalf("bad /traces line: %v\n%s", err, traces)
	}
	if line.Engine != "serve" || line.TraceID != traceID || !line.Sampled ||
		line.Queries != int32(len(queries)) {
		t.Fatalf("/traces line: %+v", line)
	}
	if line.QueueNs < 0 || line.PassNs <= 0 || line.TotalNs < line.PassNs {
		t.Fatalf("span split not coherent: %+v", line)
	}

	// Every query of the request journals under the trace, each with its
	// own derived child span; the sampled flag forced the timed path.
	_, journal := get("/journal")
	spans := map[string]bool{}
	for _, jl := range strings.Split(strings.TrimSpace(journal), "\n") {
		var ev struct {
			TraceID   string `json:"trace_id"`
			SpanID    string `json:"span_id"`
			Sampled   bool   `json:"sampled"`
			LatencyNs int64  `json:"latency_ns"`
		}
		if err := json.Unmarshal([]byte(jl), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", jl, err)
		}
		if ev.TraceID != traceID {
			continue
		}
		if len(ev.SpanID) != 16 {
			t.Fatalf("journal event span id %q", ev.SpanID)
		}
		if !ev.Sampled || ev.LatencyNs <= 0 {
			t.Fatalf("sampled traceparent did not force the timed path: %s", jl)
		}
		spans[ev.SpanID] = true
	}
	if len(spans) != len(queries) {
		t.Fatalf("journal carries %d spans for the trace, want %d", len(spans), len(queries))
	}

	// The trace renders as Chrome trace_event JSON with request and
	// per-query lanes.
	status, chrome := get("/traces?id=" + traceID + "&format=chrome")
	if status != http.StatusOK {
		t.Fatalf("chrome render: %d: %s", status, chrome)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chrome), &doc); err != nil {
		t.Fatalf("chrome render not JSON: %v", err)
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
	}
	for _, want := range []string{"queue", "coalesce", "pass", "descend", "scan"} {
		if byName[want] == 0 {
			t.Fatalf("chrome render missing %q spans: %v", want, byName)
		}
	}
	if byName["descend"] != len(queries) {
		t.Fatalf("%d descend spans, want one per query (%d)", byName["descend"], len(queries))
	}

	// The trace rides the latency histograms as an OpenMetrics exemplar
	// even though no tick-sampled observation has landed yet — exactly
	// the fresh-recorder state a scrape sees right after a swap. A
	// forced query must never feed the bucket counts themselves.
	_, metrics := get("/metrics")
	if !strings.Contains(metrics, `trace_id="`+traceID+`"`) {
		t.Fatalf("traced request left no exemplar on /metrics:\n%s", metrics)
	}

	// A request without a traceparent gets a server-generated, unsampled
	// context — still echoed, still valid.
	resp2, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	gen, ok := sepdc.ParseTraceparent(resp2.Header.Get("Traceparent"))
	if !ok || gen.Sampled {
		t.Fatalf("generated traceparent %q (ok=%v sampled=%v)",
			resp2.Header.Get("Traceparent"), ok, gen.Sampled)
	}
}

// TestCoalescerTracedOpAllocs: tracing must not cost the coalescer its
// zero-allocation steady state — a warm op carrying a sampled trace
// context (the most expensive variant: timed engine path, journal trace
// stamps, and a TraceSink publish per op) still allocates nothing.
func TestCoalescerTracedOpAllocs(t *testing.T) {
	cfg := testConfig()
	cfg.replicas = 1
	cfg.maxBatch = 8
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc, ok := sepdc.ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("test vector rejected")
	}
	queries := testQueries(srv, 8, 99)
	o := newOp()
	o.queries = queries
	o.trace = tc
	run := func() {
		o.enq = time.Now()
		if !srv.reps[0].submit(o) {
			t.Fatal("queue full with no traffic")
		}
		<-o.done
		if o.err != nil {
			t.Fatal(o.err)
		}
	}
	for i := 0; i < 1000; i++ { // warm arenas, rings, and the trace sink
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("traced coalescer steady state allocates: %.2f allocs/op", avg)
	}
	if srv.traces.Snapshot() == nil {
		t.Fatal("no request traces published")
	}
}
