package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sepdc"
	"sepdc/internal/obs"
	"sepdc/internal/pointgen"
	"sepdc/internal/serveproto"
	"sepdc/internal/snapshot"
	"sepdc/internal/xrand"
)

// binaryContentType is the wire-format media type; anything else on
// /query is treated as JSON.
const binaryContentType = "application/x-sepdc-query"

type serverConfig struct {
	dist    pointgen.Dist
	n, d, k int
	seed    uint64

	replicas int           // coalescer strands (queues + goroutines)
	workers  int           // Batcher strands per replica (0 = GOMAXPROCS)
	queue    int           // per-replica pending-op queue bound
	maxBatch int           // coalesced queries per pass cutover
	deadline time.Duration // batch gather deadline
	maxBody  int64         // request body cap, bytes
	sample   int           // observer sampling period (0 = default 16)
	blockW   int           // leaf-scan query-blocking width (0 = engine default)
	ringSize int           // journal ring capacity per strand (0 = default 4096)

	flightDir     string        // flight-recorder bundle directory ("" = off)
	flightLatency time.Duration // per-pass latency SLO objective
}

func (c *serverConfig) defaults() {
	if c.dist == "" {
		c.dist = pointgen.UniformCube
	}
	if c.replicas <= 0 {
		c.replicas = 2
	}
	if c.queue <= 0 {
		c.queue = 256
	}
	if c.maxBatch <= 0 {
		c.maxBatch = 512
	}
	if c.deadline <= 0 {
		c.deadline = 2 * time.Millisecond
	}
	if c.maxBody <= 0 {
		c.maxBody = 64 << 20
	}
}

// generation is one built snapshot: the immutable query structure and
// one Batcher per replica (a Batcher is a single-goroutine engine; the
// replica's coalescer goroutine is that goroutine). Generations travel
// through the snapshot.Holder; the release callback fires only after
// the last pass pinned to this generation unpins.
type generation struct {
	epoch    uint64
	seed     uint64 // tree-build seed (answers are seed-independent)
	qs       *sepdc.QueryStructure
	batchers []*sepdc.Batcher
	obs      []*sepdc.ServeObserver
	inflight atomic.Int64 // passes currently pinned to this generation
}

// server owns the serving state: the point set (fixed for the process
// lifetime — answers are a pure function of points and k, which is what
// makes rebuild-and-swap answer-preserving), the current snapshot
// generation, and the replica coalescers.
type server struct {
	cfg    serverConfig
	points [][]float64

	snap *snapshot.Holder[*generation]
	gens atomic.Uint64 // generations built; epoch source
	reps []*replica
	rr   atomic.Uint64 // round-robin admission cursor

	// passLat is the per-pass serving latency histogram: multi-writer
	// safe, so the SLO/flight evaluator may read it concurrently with
	// serving — the property FlightRecorder.Watch needs from a source
	// in a process whose Batchers are replaced by every swap.
	passLat obs.AtomicHist

	journals []*sepdc.QueryJournal

	// traces is the request-trace log behind /traces: every request gets
	// a trace context (parsed from its traceparent header, else generated
	// deterministically from the process seed and traceN) and publishes a
	// queue → coalesce → pass span summary on completion.
	traces *sepdc.TraceLog
	traceN atomic.Uint64 // per-request counter for generated trace ids

	// fr, when configured, burns the passLat SLO and captures flight
	// bundles; the evaluator goroutine ticks it because the serving hot
	// path never has a "between Runs" moment of its own.
	fr     *sepdc.FlightRecorder
	frStop chan struct{}

	swapMu sync.Mutex // serializes rebuilds (never held on a serve path)

	// onRelease, when set (tests), observes every generation release in
	// addition to the default bookkeeping.
	onRelease func(*generation)

	rejected atomic.Int64 // admission-control rejections (503s)
	swapped  atomic.Int64 // completed snapshot swaps

	wg     sync.WaitGroup
	closed atomic.Bool

	opPool sync.Pool
}

// observerName returns the stable per-replica exposition name; swaps
// re-register the same names via ReplaceServeObserver.
func observerName(i int) string { return "serve" + strconv.Itoa(i) }

// newServer generates the point set, builds generation 0, registers
// per-replica observers and journals, and starts the coalescers.
func newServer(cfg serverConfig) (*server, error) {
	cfg.defaults()
	pts, err := pointgen.Generate(cfg.dist, cfg.n, cfg.d, xrand.New(cfg.seed))
	if err != nil {
		return nil, err
	}
	pts = pointgen.Dedup(pts)
	points := make([][]float64, len(pts))
	for i, p := range pts {
		points[i] = p
	}
	s := &server{cfg: cfg, points: points}
	s.passLat.Reset()
	s.opPool.New = func() any { return newOp() }

	s.journals = make([]*sepdc.QueryJournal, cfg.replicas)
	for i := range s.journals {
		s.journals[i] = sepdc.NewQueryJournal(observerName(i), sepdc.QueryJournalConfig{PerStrand: cfg.ringSize})
	}
	s.traces = sepdc.NewTraceLog("serve", sepdc.TraceLogConfig{})

	gen, err := s.buildGeneration(cfg.seed)
	if err != nil {
		return nil, err
	}
	s.snap = snapshot.New(gen, s.releaseGeneration)

	s.reps = make([]*replica, cfg.replicas)
	for i := range s.reps {
		s.reps[i] = newReplica(s, i)
		s.wg.Add(1)
		go s.reps[i].loop()
	}

	if cfg.flightDir != "" {
		if err := s.startFlight(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// startFlight attaches a FlightRecorder to the process-level pass
// latency histogram (stable across snapshot swaps, unlike any one
// generation's Batchers) and ticks its burn-rate evaluator from a
// dedicated goroutine — AtomicHist sources may be evaluated
// concurrently with serving.
func (s *server) startFlight() error {
	fr, err := sepdc.NewFlightRecorder(sepdc.FlightConfig{
		Dir:              s.cfg.flightDir,
		LatencyObjective: s.cfg.flightLatency,
		CaptureWindow:    100 * time.Millisecond,
		Cooldown:         time.Second,
	})
	if err != nil {
		return err
	}
	if err := fr.Watch("serve_pass", s.passLat.Snapshot, s.journals[0], nil, s.traces); err != nil {
		return err
	}
	s.fr = fr
	s.frStop = make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.fr.Evaluate()
			case <-s.frStop:
				return
			}
		}
	}()
	return nil
}

// buildGeneration builds one snapshot generation: query structure,
// per-replica Batchers, and per-replica observers re-registered under
// the stable names (ReplaceServeObserver — the previous generation's
// deferred Close is identity-checked and cannot drop these slots).
func (s *server) buildGeneration(seed uint64) (*generation, error) {
	qs, err := sepdc.NewQueryStructure(s.points, s.cfg.k, seed)
	if err != nil {
		return nil, err
	}
	gen := &generation{
		epoch:    s.gens.Load(),
		seed:     seed,
		qs:       qs,
		batchers: make([]*sepdc.Batcher, s.cfg.replicas),
		obs:      make([]*sepdc.ServeObserver, s.cfg.replicas),
	}
	s.gens.Add(1)
	for i := 0; i < s.cfg.replicas; i++ {
		gen.obs[i] = sepdc.ReplaceServeObserver(observerName(i),
			sepdc.ServeObserverConfig{SampleEvery: s.cfg.sample})
		bt := qs.NewBatcher(s.cfg.workers)
		if s.cfg.blockW > 0 {
			bt.SetBlockWidth(s.cfg.blockW)
		}
		bt.Observe(gen.obs[i])
		bt.Journal(s.journals[i])
		gen.batchers[i] = bt
	}
	return gen, nil
}

// releaseGeneration is the snapshot.Holder release callback: it runs
// once, after the swap that replaced gen AND the last reader's unpin.
// The observers' Close is the replace-safe no-op unless the server is
// shutting down and the generation still owns its names.
func (s *server) releaseGeneration(gen *generation) {
	for _, o := range gen.obs {
		o.Close()
	}
	obs.SetGauge(obs.GaugeKey{Name: "sepdc_serve_generations_released"},
		"Snapshot generations fully drained and released.",
		float64(s.swapped.Load()))
	if s.onRelease != nil {
		s.onRelease(gen)
	}
}

// Swap rebuilds the snapshot from the server's point set under a new
// tree seed and publishes it atomically. Serving continues on the old
// generation for the whole build; the old generation is released after
// its last in-flight pass unpins. Returns the new epoch.
func (s *server) Swap(seed uint64) (uint64, time.Duration, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	start := time.Now()
	gen, err := s.buildGeneration(seed)
	if err != nil {
		return 0, 0, err
	}
	s.snap.Swap(gen, s.releaseGeneration)
	s.swapped.Add(1)
	return gen.epoch, time.Since(start), nil
}

// Epoch returns the epoch of the currently published generation.
func (s *server) Epoch() uint64 {
	pin := s.snap.Acquire()
	e := pin.Value().epoch
	pin.Unpin()
	return e
}

// dispatch runs one op through a replica coalescer, blocking until the
// pass that contains it completes. Admission control: every replica
// queue full → false (shed; the handler maps it to 503).
func (s *server) dispatch(o *op) bool {
	start := int(s.rr.Add(1)-1) % len(s.reps)
	for i := 0; i < len(s.reps); i++ {
		if s.reps[(start+i)%len(s.reps)].submit(o) {
			<-o.done
			return true
		}
	}
	s.rejected.Add(1)
	return false
}

// getOp / putOp recycle ops (and their arenas, query headers, and done
// channels) through the pool.
func (s *server) getOp() *op { return s.opPool.Get().(*op) }

func (s *server) putOp(o *op) {
	o.queries = o.queries[:0]
	o.err = nil
	o.trace = sepdc.TraceContext{}
	s.opPool.Put(o)
}

// Close stops the coalescers (draining queued ops), drops the publisher
// reference on the current generation, and waits for the goroutines.
func (s *server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.frStop != nil {
		close(s.frStop)
	}
	for _, r := range s.reps {
		close(r.stop)
	}
	s.wg.Wait()
	if s.fr != nil {
		s.fr.Close()
	}
	s.snap.Close()
	for _, j := range s.journals {
		j.Close()
	}
	s.traces.Close()
}

// ---- HTTP layer ----

// handler returns the service mux: the query/swap/health endpoints plus
// the full observability surface (/metrics, /statsz, /journal, /traces).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /swap", s.handleSwap)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mh := sepdc.MetricsHandler()
	mux.Handle("/metrics", mh)
	mux.Handle("/statsz", mh)
	mux.Handle("/journal", mh)
	mux.Handle("/traces", mh)
	return mux
}

type jsonQueryRequest struct {
	Queries [][]float64 `json:"queries"`
	Closed  bool        `json:"closed"`
}

type jsonQueryResponse struct {
	Epoch   uint64  `json:"epoch"`
	Closed  bool    `json:"closed"`
	Results [][]int `json:"results"`
}

// pooledBuf recycles the binary request/response scratch of the binary
// /query path: body bytes, decoded request, and encoded response frame.
type pooledBuf struct {
	body []byte
	req  serveproto.Request
	resp []byte
}

var bufPool = sync.Pool{New: func() any { return &pooledBuf{} }}

func (s *server) handleQuery(w http.ResponseWriter, req *http.Request) {
	if s.closed.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	if req.ContentLength > s.cfg.maxBody {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	// Every request is traced: a valid traceparent header adopts the
	// caller's context (a sampled one forces the engine's timed path for
	// the request's queries); anything else gets a deterministic
	// server-generated, unsampled context.
	tc, ok := sepdc.ParseTraceparent(req.Header.Get("Traceparent"))
	if !ok {
		tc = sepdc.GenerateTrace(s.cfg.seed, s.traceN.Add(1)-1)
	}
	body := http.MaxBytesReader(w, req.Body, s.cfg.maxBody)
	if req.Header.Get("Content-Type") == binaryContentType {
		s.handleQueryBinary(w, body, tc)
		return
	}
	s.handleQueryJSON(w, body, tc)
}

func (s *server) handleQueryBinary(w http.ResponseWriter, body io.Reader, tc sepdc.TraceContext) {
	pb := bufPool.Get().(*pooledBuf)
	defer bufPool.Put(pb)
	var err error
	pb.body, err = readAll(body, pb.body[:0])
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	if err := serveproto.DecodeRequestInto(pb.body, &pb.req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if pb.req.Dim != s.cfg.d {
		http.Error(w, fmt.Sprintf("query dimension %d, structure is %d-dimensional", pb.req.Dim, s.cfg.d), http.StatusBadRequest)
		return
	}

	o := s.getOp()
	o.queries = pb.req.Queries
	o.closed = pb.req.Closed
	o.trace = tc
	o.enq = time.Now()
	if !s.serveOp(w, o) {
		return
	}
	pb.resp = serveproto.AppendResponse(pb.resp[:0], o.epoch, o.closed, len(o.res),
		func(i int) []int { return o.res[i] })
	w.Header().Set("Content-Type", binaryContentType)
	w.Header().Set("Sepdc-Epoch", strconv.FormatUint(o.epoch, 10))
	w.Header().Set("Traceparent", tc.Traceparent())
	w.Write(pb.resp)
	s.putOp(o)
}

func (s *server) handleQueryJSON(w http.ResponseWriter, body io.Reader, tc sepdc.TraceContext) {
	var jreq jsonQueryRequest
	if err := json.NewDecoder(body).Decode(&jreq); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(jreq.Queries) > serveproto.MaxQueries {
		http.Error(w, "too many queries", http.StatusBadRequest)
		return
	}
	for i, q := range jreq.Queries {
		if len(q) != s.cfg.d {
			http.Error(w, fmt.Sprintf("query %d has %d coordinates, structure is %d-dimensional", i, len(q), s.cfg.d), http.StatusBadRequest)
			return
		}
		for c, x := range q {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				http.Error(w, fmt.Sprintf("query %d coordinate %d is not finite", i, c), http.StatusBadRequest)
				return
			}
		}
	}

	o := s.getOp()
	o.queries = jreq.Queries
	o.closed = jreq.Closed
	o.trace = tc
	o.enq = time.Now()
	if !s.serveOp(w, o) {
		return
	}
	resp := jsonQueryResponse{Epoch: o.epoch, Closed: o.closed, Results: o.res}
	if resp.Results == nil {
		resp.Results = [][]int{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Sepdc-Epoch", strconv.FormatUint(o.epoch, 10))
	w.Header().Set("Traceparent", tc.Traceparent())
	json.NewEncoder(w).Encode(resp)
	s.putOp(o)
}

// serveOp dispatches o and maps coalescer outcomes to HTTP errors.
// Returns true when the caller should encode o's results (and then
// return o to the pool).
func (s *server) serveOp(w http.ResponseWriter, o *op) bool {
	if !s.dispatch(o) {
		s.putOp(o)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "serving queues full", http.StatusServiceUnavailable)
		return false
	}
	if o.err != nil {
		err := o.err
		s.putOp(o)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return false
	}
	return true
}

func (s *server) handleSwap(w http.ResponseWriter, req *http.Request) {
	seed := s.cfg.seed + s.gens.Load()
	if arg := req.URL.Query().Get("seed"); arg != "" {
		v, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			http.Error(w, "bad seed: "+err.Error(), http.StatusBadRequest)
			return
		}
		seed = v
	}
	epoch, took, err := s.Swap(seed)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"epoch":    epoch,
		"seed":     seed,
		"build_ms": float64(took.Microseconds()) / 1000,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var rejected, passes, coalesced int64
	rejected = s.rejected.Load()
	for _, r := range s.reps {
		passes += r.passes.Load()
		coalesced += r.coalesc.Load()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"epoch":     s.Epoch(),
		"points":    len(s.points),
		"dim":       s.cfg.d,
		"k":         s.cfg.k,
		"replicas":  s.cfg.replicas,
		"swaps":     s.swapped.Load(),
		"passes":    passes,
		"coalesced": coalesced,
		"rejected":  rejected,
	})
}

// readAll is io.ReadAll into a reusable buffer.
func readAll(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
