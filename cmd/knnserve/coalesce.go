package main

import (
	"sync/atomic"
	"time"

	"sepdc"
)

// The coalescer is the admission-control and batching layer between the
// HTTP handlers and the zero-alloc batch engine. Each replica owns a
// bounded queue of pending ops and one coalescer goroutine: the
// goroutine blocks for the first op, then gathers more until either
// maxBatch queries have accumulated or the batch deadline expires,
// pins the current snapshot generation, runs one (or two — open and
// closed queries cannot share a pass) Batcher passes, copies each op's
// answers into op-owned arenas, and signals the waiting handlers.
//
// Design constraints, in the batch engine's own style:
//
//   - The steady state allocates nothing: ops are pooled by the HTTP
//     layer, every per-pass slice on the replica is reused, result
//     arenas grow once per op and are recycled with it, and the
//     deadline timer is a single reused time.Timer.
//     TestCoalescerSteadyStateAllocs holds the line.
//
//   - A pass pins exactly one generation: queries coalesced into one
//     pass are all answered by the same snapshot, and the pin is held
//     until their results have been copied out, so a concurrent swap
//     can never release a snapshot mid-pass (the internal/snapshot
//     contract) and every op reports the epoch that actually served it.
//
//   - Admission control is the bounded queue itself: a full queue
//     rejects at the front door (HTTP 503) instead of growing an
//     unbounded backlog, which is what keeps tail latency meaningful
//     under saturation.

// op is one pending request's unit of work: the queries to answer, and
// op-owned result storage the coalescer fills before signalling done.
// Ops are pooled and reused; all reference-holding fields are either
// reset cheaply (slices re-sliced to zero length) or overwritten.
type op struct {
	queries [][]float64 // caller-owned; read only during the pass
	closed  bool

	// trace is the request's trace context (zero = untraced, the pooled
	// reset state); enq/deq bound the queue span: admission by the HTTP
	// handler and pickup by the coalescer goroutine.
	trace sepdc.TraceContext
	enq   time.Time
	deq   time.Time

	res   [][]int // one row per query, views into arena
	arena []int   // op-owned id storage, grows once per size class
	epoch uint64  // generation ordinal that served the op
	err   error

	done chan struct{} // 1-buffered; reused across lives
}

func newOp() *op {
	return &op{
		arena: make([]int, 0, 64),
		done:  make(chan struct{}, 1),
	}
}

// replica is one serving strand: a bounded pending-op queue, a
// coalescer goroutine, and per-pass scratch. The Batcher it runs on
// lives in the pinned generation (one Batcher per replica per
// generation — Batchers are single-goroutine engines, and the
// coalescer goroutine is that goroutine).
type replica struct {
	srv *server
	idx int

	ch   chan *op
	stop chan struct{}

	// Per-pass scratch, reused: the ops gathered this round, the
	// per-mode (open/closed) op groupings, and the query and per-query
	// trace slices handed to the Batcher.
	batch  []*op
	groups [2][]*op
	qbuf   [][]float64
	tbuf   []sepdc.TraceContext

	timer *time.Timer

	passes  atomic.Int64 // coalesced Batcher passes run
	coalesc atomic.Int64 // ops that shared a pass with at least one other
}

func newReplica(s *server, idx int) *replica {
	r := &replica{
		srv:   s,
		idx:   idx,
		ch:    make(chan *op, s.cfg.queue),
		stop:  make(chan struct{}),
		batch: make([]*op, 0, 64),
		qbuf:  make([][]float64, 0, s.cfg.maxBatch),
		tbuf:  make([]sepdc.TraceContext, 0, s.cfg.maxBatch),
		timer: time.NewTimer(time.Hour),
	}
	for i := range r.groups {
		r.groups[i] = make([]*op, 0, 64)
	}
	if !r.timer.Stop() {
		<-r.timer.C
	}
	return r
}

// submit offers an op to this replica's queue without blocking.
func (r *replica) submit(o *op) bool {
	select {
	case r.ch <- o:
		return true
	default:
		return false
	}
}

// loop is the coalescer goroutine: gather, serve, repeat. On stop it
// drains whatever is already queued (their handlers are waiting) and
// returns.
func (r *replica) loop() {
	defer r.srv.wg.Done()
	for {
		var first *op
		select {
		case first = <-r.ch:
		case <-r.stop:
			r.drain()
			return
		}
		first.deq = time.Now()
		r.batch = append(r.batch[:0], first)
		nq := len(first.queries)

		// Gather until the size cutover or the batch deadline. The
		// deadline starts at first arrival — an op never waits longer
		// than one deadline before its pass starts.
		if nq < r.srv.cfg.maxBatch {
			r.timer.Reset(r.srv.cfg.deadline)
		gather:
			for nq < r.srv.cfg.maxBatch {
				select {
				case o := <-r.ch:
					o.deq = time.Now()
					r.batch = append(r.batch, o)
					nq += len(o.queries)
				case <-r.timer.C:
					break gather
				case <-r.stop:
					break gather
				}
			}
			if !r.timer.Stop() {
				select {
				case <-r.timer.C:
				default:
				}
			}
		}
		r.serve(r.batch)
	}
}

// drain serves every op still queued after stop, one final pass each
// wave, so no handler is left waiting on a dead coalescer.
func (r *replica) drain() {
	for {
		select {
		case o := <-r.ch:
			o.deq = time.Now()
			r.batch = append(r.batch[:0], o)
			r.serve(r.batch)
		default:
			return
		}
	}
}

// serve answers one gathered batch against a single pinned snapshot
// generation. Open and closed queries are partitioned into separate
// Batcher passes (membership mode is a pass-level switch); both passes
// run on the same pinned generation, so a mixed batch still reports one
// epoch.
func (r *replica) serve(batch []*op) {
	pin := r.srv.snap.Acquire()
	gen := pin.Value()
	gen.inflight.Add(1)
	bt := gen.batchers[r.idx]
	coalesced := len(batch) > 1

	// Partition once, before any op is signalled: the moment an op's
	// done fires its handler may recycle it into the pool, so no field
	// of a signalled op may be read again — not even the closed flag.
	r.groups[0] = r.groups[0][:0]
	r.groups[1] = r.groups[1][:0]
	for _, o := range batch {
		if o.closed {
			r.groups[1] = append(r.groups[1], o)
		} else {
			r.groups[0] = append(r.groups[0], o)
		}
	}

	for mode, group := range r.groups {
		if len(group) == 0 {
			continue
		}
		r.qbuf = r.qbuf[:0]
		r.tbuf = r.tbuf[:0]
		traced := false
		for _, o := range group {
			r.qbuf = append(r.qbuf, o.queries...)
			for range o.queries {
				r.tbuf = append(r.tbuf, o.trace)
			}
			if o.trace.Valid() {
				traced = true
			}
		}
		// An all-untraced group (pooled ops reset to the zero context)
		// takes the exact pre-tracing engine path: RunTraced(q, nil) is
		// Run.
		tb := r.tbuf
		if !traced {
			tb = nil
		}
		start := time.Now()
		var err error
		if mode == 1 {
			err = bt.RunClosedTraced(r.qbuf, tb)
		} else {
			err = bt.RunTraced(r.qbuf, tb)
		}
		passNs := time.Since(start).Nanoseconds()
		r.srv.passLat.Observe(passNs)
		r.passes.Add(1)

		qi := 0
		for _, o := range group {
			o.epoch = gen.epoch
			o.err = err
			if coalesced {
				r.coalesc.Add(1)
			}
			if err != nil {
				// Validation failures are caught at decode; an error
				// here fails the whole pass. Leave results empty.
				o.res = o.res[:0]
				r.publishTrace(o, gen.epoch, start, passNs)
				o.done <- struct{}{}
				continue
			}
			// Size the arena exactly before taking views: rows alias
			// the arena, so it must not reallocate while rows are
			// being appended.
			total := 0
			for j := range o.queries {
				total += len(bt.Result(qi + j))
			}
			if cap(o.arena) < total {
				o.arena = make([]int, 0, total)
			} else {
				o.arena = o.arena[:0]
			}
			o.res = o.res[:0]
			for range o.queries {
				ids := bt.Result(qi)
				qi++
				lo := len(o.arena)
				o.arena = append(o.arena, ids...)
				o.res = append(o.res, o.arena[lo:len(o.arena):len(o.arena)])
			}
			r.publishTrace(o, gen.epoch, start, passNs)
			o.done <- struct{}{}
		}
	}
	gen.inflight.Add(-1)
	pin.Unpin()
}

// publishTrace records a completed op's queue → coalesce → pass span
// summary on the server's trace log. Must run BEFORE the op's done
// signal (a signalled op may already be back in the pool). Untraced ops
// (the zero context) publish nothing, so serving paths that never set a
// trace stay allocation-identical to the pre-tracing coalescer.
func (r *replica) publishTrace(o *op, epoch uint64, passStart time.Time, passNs int64) {
	if !o.trace.Valid() {
		return
	}
	now := time.Now()
	r.srv.traces.Publish(sepdc.RequestTrace{
		Trace:       o.trace,
		StartUnixNs: o.enq.UnixNano(),
		QueueNs:     o.deq.Sub(o.enq).Nanoseconds(),
		CoalesceNs:  passStart.Sub(o.deq).Nanoseconds(),
		PassNs:      passNs,
		TotalNs:     now.Sub(o.enq).Nanoseconds(),
		Queries:     int32(len(o.queries)),
		Closed:      o.closed,
		Replica:     int32(r.idx),
		Epoch:       epoch,
	})
}
