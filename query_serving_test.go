package sepdc

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"sepdc/internal/xrand"
)

// queryPoints returns a mix of stored points and fresh uniform points —
// queries exercising both the boundary-heavy and the generic paths.
func queryPoints(points [][]float64, n int, seed uint64) [][]float64 {
	g := xrand.New(seed)
	d := len(points[0])
	out := make([][]float64, n)
	for i := range out {
		if i%3 == 0 {
			out[i] = points[g.IntN(len(points))]
		} else {
			out[i] = g.InCube(d)
		}
	}
	return out
}

// TestGoldenCoveringBallsBatch is the serving-path golden contract under
// every chaos profile: with KNN_CHAOS rerouting the structure build onto
// its punt/fallback paths, the batched answers — both the copying
// CoveringBallsBatch and the zero-alloc Batcher — must stay element-for-
// element identical to sequential CoveringBalls.
func TestGoldenCoveringBallsBatch(t *testing.T) {
	const n, d, k, seed = 500, 3, 3, 13
	points := genPoints(n, d, seed)
	queries := queryPoints(points, 200, 57)

	profiles := map[string]string{"clean": ""}
	for name, spec := range chaosSpecs {
		profiles[name] = spec
	}
	for name, spec := range profiles {
		t.Run(name, func(t *testing.T) {
			if spec != "" {
				t.Setenv("KNN_CHAOS", spec)
			}
			qs, err := NewQueryStructure(points, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]int, len(queries))
			for i, q := range queries {
				want[i], err = qs.CoveringBalls(q)
				if err != nil {
					t.Fatalf("sequential query %d: %v", i, err)
				}
			}
			got, err := qs.CoveringBallsBatch(queries)
			if err != nil {
				t.Fatal(err)
			}
			for i := range queries {
				if !sameInts(got[i], want[i]) {
					t.Fatalf("CoveringBallsBatch query %d: %v, sequential %v", i, got[i], want[i])
				}
			}
			bt := qs.NewBatcher(3)
			if err := bt.Run(queries); err != nil {
				t.Fatal(err)
			}
			if bt.Len() != len(queries) {
				t.Fatalf("Batcher.Len = %d, want %d", bt.Len(), len(queries))
			}
			for i := range queries {
				if !sameInts(bt.Result(i), want[i]) {
					t.Fatalf("Batcher query %d: %v, sequential %v", i, bt.Result(i), want[i])
				}
			}
			st := bt.Stats()
			if st.Batches != 1 || st.Queries != int64(len(queries)) || st.Latency.Count != 1 {
				t.Fatalf("Batcher stats not populated: %+v", st)
			}
		})
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCoveringBallsValidation checks the typed-sentinel contract on every
// query entry point: dimension mismatches and non-finite coordinates are
// rejected with errors wrapping the library sentinels, and a bad query
// anywhere in a batch rejects the whole batch.
func TestCoveringBallsValidation(t *testing.T) {
	qs, err := NewQueryStructure(genPoints(60, 2, 3), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		q    []float64
		want error
	}{
		{[]float64{1}, ErrDimensionMismatch},
		{[]float64{1, 2, 3}, ErrDimensionMismatch},
		{nil, ErrDimensionMismatch},
		{[]float64{math.NaN(), 0}, ErrNonFiniteCoordinate},
		{[]float64{0, math.Inf(1)}, ErrNonFiniteCoordinate},
		{[]float64{math.Inf(-1), 0}, ErrNonFiniteCoordinate},
	}
	bt := qs.NewBatcher(2)
	for _, tc := range bad {
		if _, err := qs.CoveringBalls(tc.q); !errors.Is(err, tc.want) {
			t.Errorf("CoveringBalls(%v): err = %v, want %v", tc.q, err, tc.want)
		}
		batch := [][]float64{{0.5, 0.5}, tc.q}
		if _, err := qs.CoveringBallsBatch(batch); !errors.Is(err, tc.want) {
			t.Errorf("CoveringBallsBatch with %v: err = %v, want %v", tc.q, err, tc.want)
		}
		if err := bt.Run(batch); !errors.Is(err, tc.want) {
			t.Errorf("Batcher.Run with %v: err = %v, want %v", tc.q, err, tc.want)
		}
	}
	// Good queries still work after rejections.
	if _, err := qs.CoveringBalls([]float64{0.5, 0.5}); err != nil {
		t.Fatalf("valid query after rejections: %v", err)
	}
}

// TestBatcherZeroAllocSteadyState is the acceptance criterion's tier-1
// zero-alloc assertion at the public API: once warm, Batcher.Run performs
// zero heap allocations per batch, at one strand and at several.
func TestBatcherZeroAllocSteadyState(t *testing.T) {
	points := genPoints(1500, 2, 5)
	qs, err := NewQueryStructure(points, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	queries := queryPoints(points, 256, 19)
	for _, workers := range []int{1, 4} {
		bt := qs.NewBatcher(workers)
		for warm := 0; warm < 3; warm++ {
			if err := bt.Run(queries); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(50, func() { bt.Run(queries) }); avg != 0 {
			t.Fatalf("workers=%d: %v allocs per steady-state Run, want 0", workers, avg)
		}
		// The zero-alloc contract must survive an attached observer: the
		// sampled timed path records into preallocated shards.
		obsv := NewServeObserver(fmt.Sprintf("alloc-test-%d", workers), ServeObserverConfig{SampleEvery: 4})
		defer obsv.Close()
		bt.Observe(obsv)
		for warm := 0; warm < 3; warm++ {
			if err := bt.Run(queries); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(50, func() { bt.Run(queries) }); avg != 0 {
			t.Fatalf("workers=%d: %v allocs per instrumented steady-state Run, want 0", workers, avg)
		}
	}
}

// TestBatcherObserverGoldenIdentity: an observer timing every query must
// not change a single answer relative to an unobserved Batcher.
func TestBatcherObserverGoldenIdentity(t *testing.T) {
	points := genPoints(1000, 3, 27)
	qs, err := NewQueryStructure(points, 3, 27)
	if err != nil {
		t.Fatal(err)
	}
	queries := queryPoints(points, 300, 29)
	plain := qs.NewBatcher(2)
	observed := qs.NewBatcher(2)
	obsv := NewServeObserver("golden-test", ServeObserverConfig{SampleEvery: 1, Tail: 4})
	defer obsv.Close()
	observed.Observe(obsv)
	if err := plain.Run(queries); err != nil {
		t.Fatal(err)
	}
	if err := observed.Run(queries); err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if !sameInts(plain.Result(i), observed.Result(i)) {
			t.Fatalf("query %d: observed %v != plain %v", i, observed.Result(i), plain.Result(i))
		}
	}
	snap := obsv.Snapshot()
	if snap.Queries != int64(len(queries)) || snap.Sampled != snap.Queries {
		t.Fatalf("snapshot counts = %d/%d, want %d timed queries", snap.Sampled, snap.Queries, len(queries))
	}
	if snap.Window.P50 <= 0 || snap.Window.P999 < snap.Window.P50 {
		t.Fatalf("window quantiles implausible: %+v", snap.Window)
	}
	if len(snap.Tail) == 0 {
		t.Fatal("no tail samples")
	}
}

// TestQueryStructureAudit: the public audit entry point must pass on a
// well-formed structure and validate its probes.
func TestQueryStructureAudit(t *testing.T) {
	points := genPoints(2000, 2, 31)
	qs, err := NewQueryStructure(points, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := qs.Audit(queryPoints(points, 200, 33), AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("audit failed on uniform points: %+v", rep.Checks)
	}
	if rep.K != 4 || rep.N != len(points) || rep.D != 2 {
		t.Fatalf("report identity = n=%d d=%d k=%d", rep.N, rep.D, rep.K)
	}
	if _, err := qs.Audit([][]float64{{1.0}}, AuditConfig{}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("bad probe accepted: %v", err)
	}
}

// TestBatchServingStress hammers the serving surface from many goroutines
// under -race: per-goroutine Batchers and the shared (mutex-guarded)
// CoveringBallsBatch engine run concurrently over one QueryStructure and
// must keep agreeing with the precomputed sequential answers.
func TestBatchServingStress(t *testing.T) {
	points := genPoints(800, 3, 11)
	qs, err := NewQueryStructure(points, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	queries := queryPoints(points, 160, 83)
	want := make([][]int, len(queries))
	for i, q := range queries {
		want[i], err = qs.CoveringBalls(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	const goroutines, reps = 6, 5
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			check := func(got []int, i int, path string) error {
				if !sameInts(got, want[i]) {
					return fmt.Errorf("goroutine %d %s query %d: %v, want %v", gi, path, i, got, want[i])
				}
				return nil
			}
			if gi%2 == 0 {
				bt := qs.NewBatcher(2)
				for rep := 0; rep < reps; rep++ {
					if err := bt.Run(queries); err != nil {
						errc <- err
						return
					}
					for i := range queries {
						if err := check(bt.Result(i), i, "batcher"); err != nil {
							errc <- err
							return
						}
					}
				}
			} else {
				for rep := 0; rep < reps; rep++ {
					rows, err := qs.CoveringBallsBatch(queries)
					if err != nil {
						errc <- err
						return
					}
					for i := range queries {
						if err := check(rows[i], i, "shared"); err != nil {
							errc <- err
							return
						}
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestNeighborsBatch checks the graph-side batched accessor: row-for-row
// agreement with Neighbors, the nil-selects-all form, and range
// validation.
func TestNeighborsBatch(t *testing.T) {
	points := genPoints(300, 2, 17)
	g, err := BuildKNNGraph(points, 4, &Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 7, 7, len(points) - 1, 3}
	rows, err := g.NeighborsBatch(idx)
	if err != nil {
		t.Fatal(err)
	}
	for j, i := range idx {
		want := g.Neighbors(i)
		if len(rows[j]) != len(want) {
			t.Fatalf("row %d: %d neighbors, want %d", j, len(rows[j]), len(want))
		}
		for m := range want {
			if rows[j][m] != want[m] {
				t.Fatalf("row %d entry %d: %+v, want %+v", j, m, rows[j][m], want[m])
			}
		}
	}
	all, err := g.NeighborsBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != g.NumPoints() {
		t.Fatalf("nil selection returned %d rows, want %d", len(all), g.NumPoints())
	}
	for i := range all {
		want := g.Neighbors(i)
		if len(all[i]) != len(want) || (len(want) > 0 && all[i][0] != want[0]) {
			t.Fatalf("nil-selection row %d disagrees with Neighbors", i)
		}
	}
	if _, err := g.NeighborsBatch([]int{0, -1}); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, err := g.NeighborsBatch([]int{g.NumPoints()}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	empty, err := g.NeighborsBatch([]int{})
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty selection: %v, %d rows", err, len(empty))
	}
}
