package sepdc

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"sepdc/internal/obs"
	"sepdc/internal/obs/promtext"
)

type failingWriter struct{ err error }

func (f *failingWriter) Write([]byte) (int, error) { return 0, f.err }

// TestGraphWriteTracePropagatesWriteError: a failing sink must surface
// through the public trace export, not vanish.
func TestGraphWriteTracePropagatesWriteError(t *testing.T) {
	points := genPoints(400, 2, 3)
	g, err := BuildKNNGraph(points, 2, &Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var ok bytes.Buffer
	if err := g.WriteTrace(&ok); err != nil {
		t.Fatalf("healthy writer failed: %v", err)
	}
	sink := errors.New("pipe closed")
	if err := g.WriteTrace(&failingWriter{err: sink}); !errors.Is(err, sink) {
		t.Fatalf("write error not propagated: %v", err)
	}
}

// TestStatsReportWriteText: the build report renders through the
// error-propagating WriteText used by cmd/knn.
func TestStatsReportWriteText(t *testing.T) {
	points := genPoints(400, 2, 3)
	g, err := BuildKNNGraph(points, 2, &Options{Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := g.Stats().Report
	if rep == nil {
		t.Fatal("no report with Observe set")
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "observability report") {
		t.Fatalf("unexpected rendering:\n%s", buf.String())
	}
	sink := errors.New("disk full")
	if err := rep.WriteText(&failingWriter{err: sink}); !errors.Is(err, sink) {
		t.Fatalf("write error not propagated: %v", err)
	}
}

func TestStatsSnapshotJSON(t *testing.T) {
	points := genPoints(400, 2, 3)
	g, err := BuildKNNGraph(points, 2, &Options{Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	raw, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if _, ok := doc["Report"]; !ok {
		t.Fatalf("snapshot missing report: %v", doc)
	}
}

// TestReplaceServeObserverSwapSafe pins the per-replica swap pattern
// cmd/knnserve relies on: ReplaceServeObserver re-registers a name with
// a fresh recorder, and closing the superseded observer afterwards (as
// a draining snapshot's release callback does) must NOT tear down the
// replacement's live exposition slot.
func TestReplaceServeObserverSwapSafe(t *testing.T) {
	old := NewServeObserver("swap-safe", ServeObserverConfig{})
	repl := ReplaceServeObserver("swap-safe", ServeObserverConfig{})
	defer repl.Close()

	old.Close() // deferred close of the drained generation: must no-op

	if got := obs.LookupServe("swap-safe"); got == nil {
		t.Fatal("stale observer's Close dropped the replacement's registration")
	} else if got != repl.rec {
		t.Fatal("registry does not hold the replacement's recorder")
	}

	// A real Close by the owner still unregisters.
	repl.Close()
	if obs.LookupServe("swap-safe") != nil {
		t.Fatal("owner Close left the slot registered")
	}
}

// TestQueryJournalCloseSwapSafe: same replace-safe teardown for the
// /journal registry.
func TestQueryJournalCloseSwapSafe(t *testing.T) {
	old := NewQueryJournal("swap-safe-j", QueryJournalConfig{})
	// NewQueryJournal reuses an incumbent, so force a distinct journal
	// under the same name the way a from-scratch replacement would.
	j2 := obs.NewJournal(obs.JournalConfig{}, 0)
	obs.RegisterJournal("swap-safe-j", j2)

	old.Close() // stale handle: must not drop j2's slot
	if got := obs.LookupJournal("swap-safe-j"); got != j2 {
		t.Fatal("stale journal Close dropped the replacement's registration")
	}
	obs.UnregisterJournal("swap-safe-j", j2)
	if obs.LookupJournal("swap-safe-j") != nil {
		t.Fatal("owner unregister left the slot registered")
	}
}

// TestMetricsHandlerEndToEnd: the public handler must serve a lintable
// exposition carrying a served Batcher's telemetry and published audit
// gauges — the in-process version of the CI scrape job.
func TestMetricsHandlerEndToEnd(t *testing.T) {
	points := genPoints(1200, 2, 41)
	qs, err := NewQueryStructure(points, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	obsv := NewServeObserver("e2e", ServeObserverConfig{SampleEvery: 2})
	defer obsv.Close()
	bt := qs.NewBatcher(2)
	bt.Observe(obsv)
	queries := queryPoints(points, 200, 43)
	for i := 0; i < 3; i++ {
		if err := bt.Run(queries); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := qs.Audit(queries, AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep.Gen = "uniform-cube"
	rep.Publish()

	srv := httptest.NewServer(MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := promtext.Lint(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics failed lint: %v\n%s", err, body)
	}
	if got := exp.Find("sepdc_serve_e2e_queries_total"); len(got) != 1 || got[0].Value != 600 {
		t.Errorf("served counter = %+v", got)
	}
	if got := exp.Find("sepdc_audit_pass"); len(got) != 1 || got[0].Value != 1 {
		t.Errorf("audit pass gauge = %+v", got)
	}
	if exp.Types["sepdc_serve_e2e_latency_ns"] != "histogram" {
		t.Errorf("latency family missing: %v", exp.Types)
	}
}
