module sepdc

go 1.24
