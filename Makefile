# Development entry points. `make verify` is the tier-1 gate (see ROADMAP.md).

GO ?= go
FUZZTIME ?= 60s

.PHONY: build vet test test-race race-batch race-serve metrics-audit flight-smoke serve-smoke bench bench-json bench-query bench-kernel bench-serve kernels-matrix verify fuzz chaos clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full-repo race gate. -short skips the large soak builds whose race
# overhead would dominate CI; the soak itself stays in plain `make test`.
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the machine-readable BuildKNNGraph benchmark record
# (includes the query-serving section: pointer vs frozen vs batch).
bench-json:
	$(GO) run ./cmd/knnbench -out BENCH_knn.json

# Query-serving benchmarks: the three covering-ball engines and the
# batched adjacency accessor. CI runs these at -benchtime=1x and diffs
# against testdata/bench-query-baseline.txt with benchstat when
# available (informational smoke, not a gate).
bench-query:
	$(GO) test -run '^$$' -bench 'CoveringBalls|NeighborsBatch' -benchmem .

# Distance-kernel benchmarks: the d=2..8 dispatch table (unrolled
# single-pair and four-point forms, plus the AVX2 assembly eight-lane
# batch and strided forms on CPUs that have them) against the generic
# fallback. CI runs these at -benchtime=1x and diffs against
# testdata/bench-kernel-baseline.txt — deliberately the PR-6 record,
# taken before the assembly tier existed, so on an AVX2 host the
# benchstat delta reads as asm's gain over the unrolled kernels —
# with benchstat when available (informational smoke, not a gate).
bench-kernel:
	$(GO) test -run '^$$' -bench 'Dist2Kernel|Dist2Generic|Dist2Batch4|Dist2Batch8|Dist2Strided8|DotKernel' -benchmem ./internal/vec/

# Kernel-dispatch matrix: the packages that exercise distance
# arithmetic, end to end under each KNN_KERNELS tier (answers must be
# identical — the asm leg degrades to unrolled on CPUs without AVX2),
# plus a purego no-assembly build-and-test leg and a non-amd64
# cross-compile of the stub path (what CI's kernels-matrix job runs).
kernels-matrix:
	KNN_KERNELS=generic $(GO) test -count=1 . ./internal/vec/ ./internal/septree/
	KNN_KERNELS=asm $(GO) test -count=1 . ./internal/vec/ ./internal/septree/
	$(GO) build -tags purego ./...
	$(GO) test -tags purego -count=1 ./internal/vec/ ./internal/septree/ ./internal/cpufeat/
	GOOS=linux GOARCH=arm64 $(GO) build ./...

# Focused race gate over the batched query-serving paths and the
# serving telemetry they feed (concurrent Snapshot during recording,
# journal publish/drain, SLO evaluation, flight capture). Also covered
# by test-race's full-module sweep; kept as its own target so a failure
# names the subsystem.
race-batch:
	$(GO) test -race -run 'Batch|Batcher|CoveringBalls|QueryStructure|Serve|Journal|Flight|Burn|Trip|Trace' . ./internal/septree/ ./internal/obs/ ./internal/obs/slo/ ./internal/obs/flight/ ./internal/obs/runtimeobs/

# Focused race gate over the serving front end: concurrent HTTP traffic
# against the coalescer, repeated epoch/RCU snapshot swaps, telemetry
# snapshots mid-flight, and the snapshot holder's release-ordering
# tests. Also covered by test-race; its own target so a failure names
# the subsystem.
race-serve:
	$(GO) test -race ./cmd/knnserve/ ./internal/snapshot/ ./internal/serveproto/

# Scrape gate: serve a live -audit run's /metrics, then lint the
# exposition and assert the paper-invariant gauges (what CI's
# metrics-audit job runs).
metrics-audit:
	./scripts/metrics_audit.sh

# Flight-recorder smoke: a chaos-stalled -flight run must trip the SLO
# and capture a complete, -verify-bundle-clean flight bundle (what CI's
# flight-smoke job runs).
flight-smoke:
	./scripts/flight_smoke.sh

# Serving smoke: boot cmd/knnserve, replay golden-checked deterministic
# knnload traffic (including a hot snapshot swap under load), and lint
# the live /metrics exposition (what CI's serve-smoke job runs).
serve-smoke:
	./scripts/serve_smoke.sh

# Record serving latency percentiles under saturation into the "serve"
# section of BENCH_knn.json. Boots a local knnserve and drives it with
# knnload at a fixed seed; other report sections are preserved.
bench-serve:
	./scripts/bench_serve.sh

# Fuzz smoke: each target gets FUZZTIME (default 60s) of coverage-guided
# input generation on top of the committed seed corpora in testdata/fuzz.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzBuildKNNGraph$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSerializeRoundTrip$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzInsertSequence$$' -fuzztime $(FUZZTIME) ./internal/topk/
	$(GO) test -run '^$$' -fuzz '^FuzzServeRequest$$' -fuzztime $(FUZZTIME) ./internal/serveproto/
	$(GO) test -run '^$$' -fuzz '^FuzzKernelParity$$' -fuzztime $(FUZZTIME) ./internal/vec/

# Chaos matrix: the identity/degeneracy tests under every fault-injection
# profile (see DESIGN.md §10). The graph is exact, so no profile may change
# any test's outcome.
chaos:
	KNN_CHAOS="sep-fail=all" $(GO) test -run 'Chaos|Degenerate|Golden|AllAlgorithmsAgree|FlatBackendsMatchBrute' .
	KNN_CHAOS="punt=all" $(GO) test -run 'Chaos|Degenerate|Golden|AllAlgorithmsAgree|FlatBackendsMatchBrute' .
	KNN_CHAOS="march-abort=all" $(GO) test -run 'Chaos|Degenerate|Golden|AllAlgorithmsAgree|FlatBackendsMatchBrute' .
	KNN_CHAOS="march-level=1" $(GO) test -run 'Chaos|Degenerate|Golden|AllAlgorithmsAgree|FlatBackendsMatchBrute' .
	KNN_CHAOS="sep-fail=all;punt=all;march-level=1;stall=200us" $(GO) test -run 'Chaos|Degenerate|Golden|AllAlgorithmsAgree|FlatBackendsMatchBrute' .

verify: build test vet test-race

clean:
	$(GO) clean ./...
