# Development entry points. `make verify` is the tier-1 gate (see ROADMAP.md).

GO ?= go

.PHONY: build vet test test-race bench bench-json verify clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race soak for the persistent worker pool and the scan primitives that run
# on it (plus anything else cheap enough to race-test on every push). The
# obs recorder's shard fork/merge rides along: its buffers are goroutine-
# confined by the same discipline the pool's tasks are.
test-race:
	$(GO) test -race ./internal/vm/... ./internal/scan/... ./internal/pool/... ./internal/obs/...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the machine-readable BuildKNNGraph benchmark record.
bench-json:
	$(GO) run ./cmd/knnbench -out BENCH_knn.json

verify: build test vet test-race

clean:
	$(GO) clean ./...
