#!/usr/bin/env bash
# Flight-recorder smoke: run the cmd/knn -flight serve loop under a
# KNN_CHAOS stall profile so per-batch latency blows the SLO, then
# assert the recorder captured a complete bundle (meta + journal JSONL +
# tail + runtime snapshot + execution trace + CPU profile) and that
# -verify-bundle accepts it. Exits nonzero if the SLO never trips, no
# bundle appears, or the bundle is incomplete.
set -euo pipefail

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

go build -o "$OUT/knn" ./cmd/knn

KNN_CHAOS="stall=3ms" "$OUT/knn" \
  -flight "$OUT/flight" -n 2000 -d 2 -k 3 -rnn 64 \
  -flight-latency 4ms -flight-batches 150 \
  | tee "$OUT/flight.log"

grep -q "tripped" "$OUT/flight.log" || {
  echo "flight-smoke: SLO never tripped" >&2
  exit 1
}

bundles=("$OUT"/flight/bundle-*)
if [ ! -d "${bundles[0]}" ]; then
  echo "flight-smoke: no bundle under $OUT/flight" >&2
  ls -la "$OUT/flight" >&2 || true
  exit 1
fi

for b in "${bundles[@]}"; do
  "$OUT/knn" -verify-bundle "$b"
  for f in meta.json journal.jsonl tail.json runtime.json trace.out cpu.pprof; do
    [ -s "$b/$f" ] || { echo "flight-smoke: $b/$f missing or empty" >&2; exit 1; }
  done
  # Every journal line must be standalone-parseable JSON.
  python3 - "$b/journal.jsonl" <<'PY'
import json, sys
n = 0
with open(sys.argv[1]) as fh:
    for line in fh:
        if line.strip():
            json.loads(line)
            n += 1
if n == 0:
    sys.exit("journal.jsonl has no events")
print(f"flight-smoke: {sys.argv[1]}: {n} well-formed journal events")
PY
done

echo "flight-smoke: ok (${#bundles[@]} bundle(s))"
