#!/usr/bin/env bash
# Serving-latency bench: boot cmd/knnserve on a local port and drive it
# to saturation with cmd/knnload at a fixed seed, recording per-request
# p50/p99/p999 for every traffic shape (uniform, hot-leaf skew, mixed,
# swap-during-load) into the "serve" section of BENCH_knn.json. All
# other report sections are preserved verbatim.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18437}"
BENCH="${BENCH:-BENCH_knn.json}"
N="${N:-20000}" D="${D:-2}" K="${K:-3}" SEED="${SEED:-7}"
CONNS="${CONNS:-16}" REQUESTS="${REQUESTS:-300}" BATCH="${BATCH:-32}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"; kill "$SERVE_PID" 2>/dev/null || true' EXIT

go build -o "$OUT/knnserve" ./cmd/knnserve
go build -o "$OUT/knnload" ./cmd/knnload

"$OUT/knnserve" -addr "$ADDR" -n "$N" -d "$D" -k "$K" -seed "$SEED" \
  >"$OUT/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 120); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "bench-serve: knnserve exited before serving" >&2
    cat "$OUT/serve.log" >&2
    exit 1
  fi
  sleep 1
done

# Saturation run: more connections than replicas, large batches, golden
# checking off (the checker would rate-limit the client side; the
# correctness gate is serve-smoke).
"$OUT/knnload" -addr "$ADDR" -n "$N" -d "$D" -k "$K" -seed "$SEED" \
  -shapes uniform,hot,mixed,swap -conns "$CONNS" -requests "$REQUESTS" \
  -batch "$BATCH" -swap-every 200 -bench "$BENCH" >/dev/null

kill "$SERVE_PID" 2>/dev/null || true
echo "bench-serve: serve section written to $BENCH"
