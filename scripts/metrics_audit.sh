#!/usr/bin/env bash
# Scrape gate for the serving telemetry: run cmd/knn -audit with the
# debug server up, scrape /metrics while the process holds, lint the
# Prometheus exposition, and assert the paper-invariant gauges are in
# bounds. Exits nonzero if the audit fails, the exposition is
# malformed, or any gauge assertion is violated.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18417}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"; kill "$KNN_PID" 2>/dev/null || true' EXIT

go build -o "$OUT/knn" ./cmd/knn
go build -o "$OUT/promlint" ./cmd/promlint

"$OUT/knn" -n 4000 -d 2 -k 4 -audit -debug-addr "$ADDR" -debug-hold 30s \
  >"$OUT/audit.log" 2>&1 &
KNN_PID=$!

# Wait for the audit tables to finish and the debug server to come up.
scraped=""
for _ in $(seq 1 60); do
  if grep -q "holding for" "$OUT/audit.log" 2>/dev/null &&
     curl -fsS "http://$ADDR/metrics" -o "$OUT/metrics.txt" 2>/dev/null; then
    scraped=yes
    break
  fi
  if ! kill -0 "$KNN_PID" 2>/dev/null; then
    echo "metrics-audit: knn exited before scrape" >&2
    cat "$OUT/audit.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$scraped" ]; then
  echo "metrics-audit: never scraped $ADDR/metrics" >&2
  cat "$OUT/audit.log" >&2
  exit 1
fi

cat "$OUT/audit.log"

# The exposition must parse, and every audit gauge must be in bounds:
# overall pass == 1 and every observed/bound ratio in (0, 1].
"$OUT/promlint" \
  -gauge 'sepdc_audit_pass:1:1' \
  -gauge 'sepdc_audit_iota_ratio:0:1' \
  -gauge 'sepdc_audit_split_balance_ratio:0:1' \
  -gauge 'sepdc_audit_depth_ratio:0:1' \
  -gauge 'sepdc_audit_punt_rate_ratio:0:1' \
  -gauge 'sepdc_audit_space_ratio:0:1' \
  -gauge 'sepdc_audit_query_nodes_ratio:0:1' \
  -gauge 'sepdc_audit_query_cands_ratio:0:1' \
  "$OUT/metrics.txt"

# The serving telemetry of the audit's own probe traffic must be there.
"$OUT/promlint" -q -gauge 'sepdc_serve_audit_queries_total:1:1e18' "$OUT/metrics.txt"

# The wide-event journal's ring-saturation gauge must be exposed and be
# a fraction. (It reads 1.0 only when the ring retains a vanishing
# share of served traffic — the BENCH_knn footgun; the knob is
# QueryJournalConfig.PerStrand / knnserve -journal-ring.)
"$OUT/promlint" -q -gauge 'sepdc_journal_overwrite_rate:0:1' "$OUT/metrics.txt"

# The runtime bridge and SLO engine series must be exposed too: the
# debug server starts a runtime/metrics sampler, and runAudit runs a
# one-shot burn-rate evaluation over its probe-batch latency histogram.
"$OUT/promlint" -q \
  -gauge 'sepdc_runtime_goroutines:1:1e6' \
  -gauge 'sepdc_runtime_heap_live_bytes:1:1e18' \
  -gauge 'sepdc_runtime_gc_cycles:0:1e9' \
  -gauge 'sepdc_slo_burn_fast:0:1e9' \
  -gauge 'sepdc_slo_burn_slow:0:1e9' \
  -gauge 'sepdc_slo_tripped:0:1' \
  "$OUT/metrics.txt"

# Scrape again and hold the exposition to the cross-scrape contract:
# counters (including histogram buckets) must not decrease.
sleep 2
curl -fsS "http://$ADDR/metrics" -o "$OUT/metrics2.txt"
"$OUT/promlint" -q -prev "$OUT/metrics.txt" "$OUT/metrics2.txt"

kill "$KNN_PID" 2>/dev/null || true
echo "metrics-audit: ok"
