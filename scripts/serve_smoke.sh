#!/usr/bin/env bash
# Serving smoke gate: boot cmd/knnserve, replay deterministic knnload
# traffic at a fixed seed with golden checking on, lint the live
# /metrics exposition, drive a hot snapshot swap under load (the "swap"
# shape), and assert zero errors and zero golden failures. Exits
# nonzero on any wrong answer, serve error, or malformed exposition.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18427}"
N=4000 D=2 K=3 SEED=7
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"; kill "$SERVE_PID" 2>/dev/null || true' EXIT

go build -o "$OUT/knnserve" ./cmd/knnserve
go build -o "$OUT/knnload" ./cmd/knnload
go build -o "$OUT/promlint" ./cmd/promlint

"$OUT/knnserve" -addr "$ADDR" -n "$N" -d "$D" -k "$K" -seed "$SEED" \
  >"$OUT/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the server to build its first snapshot and come up.
up=""
for _ in $(seq 1 60); do
  if curl -fsS "http://$ADDR/healthz" -o "$OUT/healthz.json" 2>/dev/null; then
    up=yes
    break
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve-smoke: knnserve exited before serving" >&2
    cat "$OUT/serve.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$up" ]; then
  echo "serve-smoke: $ADDR/healthz never came up" >&2
  cat "$OUT/serve.log" >&2
  exit 1
fi
grep -q '"status":"ok"' "$OUT/healthz.json" || {
  echo "serve-smoke: unhealthy: $(cat "$OUT/healthz.json")" >&2
  exit 1
}

# Golden-checked load at a fixed seed across every traffic shape,
# including hot snapshot swaps mid-load. knnload exits nonzero itself on
# any error or golden failure.
"$OUT/knnload" -addr "$ADDR" -n "$N" -d "$D" -k "$K" -seed "$SEED" \
  -shapes uniform,hot,mixed,swap -conns 6 -requests 80 -batch 16 \
  -swap-every 100 -golden >"$OUT/load.json"

# The swap shape must have completed at least one hot swap, with zero
# golden failures recorded for any shape (knnload already gates on this;
# re-assert from the artifact so a silent report change cannot pass).
python3 - "$OUT/load.json" <<'PY'
import json, sys
sec = json.load(open(sys.argv[1]))
shapes = {s["shape"]: s for s in sec["shapes"]}
assert "swap" in shapes, "swap shape missing"
assert shapes["swap"].get("swaps", 0) >= 1, "no hot swap completed during load"
for name, s in shapes.items():
    assert s["errors"] == 0, f"{name}: {s['errors']} serve errors"
    assert s["golden_failures"] == 0, f"{name}: wrong answers"
    assert s["requests"] > 0, f"{name}: no requests served"
    assert s["p99_us"] > 0, f"{name}: no latency recorded"
print("serve-smoke: shapes ok:", ", ".join(
    f"{n} p99={s['p99_us']:.0f}us swaps={s.get('swaps', 0)}" for n, s in sorted(shapes.items())))
PY

# One more explicit hot swap, then lint the live exposition: the
# serving observers must be present and re-registered (not leaked) under
# their stable per-replica names after the swaps.
curl -fsS -X POST "http://$ADDR/swap" >"$OUT/swap.json"
grep -q '"epoch"' "$OUT/swap.json" || {
  echo "serve-smoke: swap response malformed: $(cat "$OUT/swap.json")" >&2
  exit 1
}

# Post-swap traffic: a swap re-registers FRESH recorders under the
# stable names, so the replacement series must start counting again.
# Round-robin admission alternates replicas; a few requests cover all.
for _ in 1 2 3 4; do
  curl -fsS -X POST "http://$ADDR/query" \
    -d '{"queries":[[0.5,0.5],[0.25,0.75]]}' >/dev/null
done

curl -fsS "http://$ADDR/metrics" -o "$OUT/metrics.txt"
"$OUT/promlint" \
  -gauge 'sepdc_serve_serve0_queries_total:1:1e18' \
  "$OUT/metrics.txt"

# Exactly one exposition slot per replica: a swap must replace, never
# duplicate or leak, the per-replica observer series.
count=$(grep -c '^sepdc_serve_serve0_queries_total' "$OUT/metrics.txt" || true)
if [ "$count" -ne 1 ]; then
  echo "serve-smoke: serve0 queries_total appears $count times (leaked observer slot?)" >&2
  exit 1
fi

# Final health check: the server survived the whole run.
curl -fsS "http://$ADDR/healthz" -o "$OUT/healthz2.json"
python3 - "$OUT/healthz2.json" <<'PY'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["status"] == "ok"
assert h["swaps"] >= 2, f"expected >=2 swaps, got {h['swaps']}"
assert h["passes"] > 0
print(f"serve-smoke: healthz ok: {h['passes']} passes, {h['coalesced']} coalesced, "
      f"{h['swaps']} swaps, {h['rejected']} rejected")
PY

kill "$SERVE_PID" 2>/dev/null || true
echo "serve-smoke: ok"
