#!/usr/bin/env bash
# Serving smoke gate: boot cmd/knnserve, replay deterministic knnload
# traffic at a fixed seed with golden checking on, lint the live
# /metrics exposition, drive a hot snapshot swap under load (the "swap"
# shape), and assert zero errors and zero golden failures. Exits
# nonzero on any wrong answer, serve error, or malformed exposition.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18427}"
ADDR2="${ADDR2:-127.0.0.1:18428}"
N=4000 D=2 K=3 SEED=7
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"; kill "$SERVE_PID" "$SERVE2_PID" 2>/dev/null || true' EXIT
SERVE_PID="" SERVE2_PID=""

go build -o "$OUT/knnserve" ./cmd/knnserve
go build -o "$OUT/knnload" ./cmd/knnload
go build -o "$OUT/promlint" ./cmd/promlint
go build -o "$OUT/knn" ./cmd/knn

"$OUT/knnserve" -addr "$ADDR" -n "$N" -d "$D" -k "$K" -seed "$SEED" \
  >"$OUT/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the server to build its first snapshot and come up.
up=""
for _ in $(seq 1 60); do
  if curl -fsS "http://$ADDR/healthz" -o "$OUT/healthz.json" 2>/dev/null; then
    up=yes
    break
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve-smoke: knnserve exited before serving" >&2
    cat "$OUT/serve.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$up" ]; then
  echo "serve-smoke: $ADDR/healthz never came up" >&2
  cat "$OUT/serve.log" >&2
  exit 1
fi
grep -q '"status":"ok"' "$OUT/healthz.json" || {
  echo "serve-smoke: unhealthy: $(cat "$OUT/healthz.json")" >&2
  exit 1
}

# Golden-checked load at a fixed seed across every traffic shape,
# including hot snapshot swaps mid-load. knnload exits nonzero itself on
# any error or golden failure.
"$OUT/knnload" -addr "$ADDR" -n "$N" -d "$D" -k "$K" -seed "$SEED" \
  -shapes uniform,hot,mixed,swap -conns 6 -requests 80 -batch 16 \
  -swap-every 100 -golden >"$OUT/load.json"

# The swap shape must have completed at least one hot swap, with zero
# golden failures recorded for any shape (knnload already gates on this;
# re-assert from the artifact so a silent report change cannot pass).
python3 - "$OUT/load.json" <<'PY'
import json, sys
sec = json.load(open(sys.argv[1]))
shapes = {s["shape"]: s for s in sec["shapes"]}
assert "swap" in shapes, "swap shape missing"
assert shapes["swap"].get("swaps", 0) >= 1, "no hot swap completed during load"
for name, s in shapes.items():
    assert s["errors"] == 0, f"{name}: {s['errors']} serve errors"
    assert s["golden_failures"] == 0, f"{name}: wrong answers"
    assert s["requests"] > 0, f"{name}: no requests served"
    assert s["p99_us"] > 0, f"{name}: no latency recorded"
print("serve-smoke: shapes ok:", ", ".join(
    f"{n} p99={s['p99_us']:.0f}us swaps={s.get('swaps', 0)}" for n, s in sorted(shapes.items())))
PY

# One more explicit hot swap, then lint the live exposition: the
# serving observers must be present and re-registered (not leaked) under
# their stable per-replica names after the swaps.
curl -fsS -X POST "http://$ADDR/swap" >"$OUT/swap.json"
grep -q '"epoch"' "$OUT/swap.json" || {
  echo "serve-smoke: swap response malformed: $(cat "$OUT/swap.json")" >&2
  exit 1
}

# Post-swap traffic: a swap re-registers FRESH recorders under the
# stable names, so the replacement series must start counting again.
# Round-robin admission alternates replicas; a few requests cover all.
for _ in 1 2 3 4; do
  curl -fsS -X POST "http://$ADDR/query" \
    -d '{"queries":[[0.5,0.5],[0.25,0.75]]}' >/dev/null
done

curl -fsS "http://$ADDR/metrics" -o "$OUT/metrics.txt"
"$OUT/promlint" \
  -gauge 'sepdc_serve_serve0_queries_total:1:1e18' \
  "$OUT/metrics.txt"

# Exactly one exposition slot per replica: a swap must replace, never
# duplicate or leak, the per-replica observer series.
count=$(grep -c '^sepdc_serve_serve0_queries_total' "$OUT/metrics.txt" || true)
if [ "$count" -ne 1 ]; then
  echo "serve-smoke: serve0 queries_total appears $count times (leaked observer slot?)" >&2
  exit 1
fi

# ---- Trace leg: a known traceparent must be traceable end to end. ----
# The W3C spec's own example trace id; the sampled flag forces every
# query of the request onto the timed phase-split path.
TP_ID='4bf92f3577b34da6a3ce929d0e0e4736'
TP="00-${TP_ID}-00f067aa0ba902b7-01"

# Round-robin admission alternates replicas; four traced requests land
# at least one exemplar on each replica's fresh post-swap recorder.
for _ in 1 2 3 4; do
  curl -fsS -X POST "http://$ADDR/query" -H "traceparent: $TP" \
    -D "$OUT/trace_hdrs.txt" \
    -d '{"queries":[[0.5,0.5],[0.25,0.75],[0.75,0.25]]}' >/dev/null
done
grep -qi "^traceparent: $TP" "$OUT/trace_hdrs.txt" || {
  echo "serve-smoke: adopted traceparent not echoed on the response" >&2
  cat "$OUT/trace_hdrs.txt" >&2
  exit 1
}

# The journal's sampled per-query events carry the trace id.
curl -fsS "http://$ADDR/journal" -o "$OUT/journal.json"
grep -q "$TP_ID" "$OUT/journal.json" || {
  echo "serve-smoke: trace id $TP_ID absent from /journal" >&2
  exit 1
}

# The request record: queue/coalesce/pass spans with sane timings.
curl -fsS "http://$ADDR/traces?id=$TP_ID" -o "$OUT/trace.jsonl"
python3 - "$OUT/trace.jsonl" "$TP_ID" <<'PY'
import json, sys
recs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert recs, "no request records for the traced id"
for r in recs:
    assert r["trace_id"] == sys.argv[2], r
    assert r["sampled"] is True, r
    assert r["queries"] == 3, r
    assert r["queue_ns"] >= 0 and r["pass_ns"] > 0, r
    assert r["total_ns"] >= r["pass_ns"], r
print(f"serve-smoke: trace ok: {len(recs)} request record(s) for {sys.argv[2]}")
PY

# The same trace renders as Chrome trace_event JSON with the full span
# decomposition: request phases plus per-query descend/scan spans.
curl -fsS "http://$ADDR/traces?id=$TP_ID&format=chrome" -o "$OUT/chrome.json"
python3 - "$OUT/chrome.json" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
names = {e["name"] for e in events}
for want in ("queue", "coalesce", "pass", "descend", "scan"):
    assert want in names, f"missing {want} span: {sorted(names)}"
descends = sum(1 for e in events if e["name"] == "descend")
assert descends >= 3, f"want >=3 descend spans, got {descends}"
print(f"serve-smoke: chrome trace ok: {len(events)} events, {descends} descend spans")
PY

# The latency histograms carry the trace as an OpenMetrics exemplar on
# both replicas, and the exemplar syntax survives the linter.
curl -fsS "http://$ADDR/metrics" -o "$OUT/metrics2.txt"
grep -q "trace_id=\"$TP_ID\"" "$OUT/metrics2.txt" || {
  echo "serve-smoke: trace id $TP_ID absent from /metrics exemplars" >&2
  exit 1
}
"$OUT/promlint" \
  -exemplar 'sepdc_serve_serve0_latency_ns' \
  -exemplar 'sepdc_serve_serve1_latency_ns' \
  "$OUT/metrics2.txt"

# ---- Flight leg: a tripped bundle must freeze the traced request. ----
# A chaos-stalled second server blows a tight pass-latency objective;
# the burn-rate trip's bundle must retain the traced request's record.
KNN_CHAOS="stall=3ms" "$OUT/knnserve" -addr "$ADDR2" -n 1500 -d "$D" \
  -k "$K" -seed "$SEED" -flight "$OUT/flight" -flight-latency 2ms \
  >"$OUT/serve2.log" 2>&1 &
SERVE2_PID=$!
up=""
for _ in $(seq 1 60); do
  if curl -fsS "http://$ADDR2/healthz" -o /dev/null 2>/dev/null; then
    up=yes
    break
  fi
  if ! kill -0 "$SERVE2_PID" 2>/dev/null; then
    echo "serve-smoke: flight knnserve exited before serving" >&2
    cat "$OUT/serve2.log" >&2
    exit 1
  fi
  sleep 1
done
[ -n "$up" ] || { echo "serve-smoke: $ADDR2/healthz never came up" >&2; exit 1; }

# Traced traffic until the SLO trips and a bundle lands (every pass is
# bad under the stall, so a few seconds of traffic suffices).
tripped=""
for _ in $(seq 1 400); do
  curl -fsS -X POST "http://$ADDR2/query" -H "traceparent: $TP" \
    -d '{"queries":[[0.5,0.5],[0.25,0.75]]}' >/dev/null || true
  if compgen -G "$OUT/flight/bundle-*" >/dev/null; then
    tripped=yes
    break
  fi
done
[ -n "$tripped" ] || {
  echo "serve-smoke: flight SLO never tripped under chaos stall" >&2
  cat "$OUT/serve2.log" >&2
  exit 1
}
kill "$SERVE2_PID" 2>/dev/null || true
wait "$SERVE2_PID" 2>/dev/null || true

bundle=$(ls -d "$OUT"/flight/bundle-* | head -1)
"$OUT/knn" -verify-bundle "$bundle"
grep -q "$TP_ID" "$bundle/traces.jsonl" || {
  echo "serve-smoke: traced request absent from $bundle/traces.jsonl" >&2
  exit 1
}
echo "serve-smoke: flight bundle ok: $(basename "$bundle") retains trace $TP_ID"

# Final health check: the server survived the whole run.
curl -fsS "http://$ADDR/healthz" -o "$OUT/healthz2.json"
python3 - "$OUT/healthz2.json" <<'PY'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["status"] == "ok"
assert h["swaps"] >= 2, f"expected >=2 swaps, got {h['swaps']}"
assert h["passes"] > 0
print(f"serve-smoke: healthz ok: {h['passes']} passes, {h['coalesced']} coalesced, "
      f"{h['swaps']} swaps, {h['rejected']} rejected")
PY

kill "$SERVE_PID" 2>/dev/null || true
echo "serve-smoke: ok"
