package sepdc

import (
	"testing"

	"sepdc/internal/vec"
)

// availableTiers lists the kernel dispatch tiers this build/CPU can
// actually serve — the asm tier only where the AVX2 bodies are linked
// in and runnable.
func availableTiers() []vec.KernelTier {
	ts := []vec.KernelTier{vec.TierGeneric, vec.TierUnrolled}
	if vec.AsmSupported() {
		ts = append(ts, vec.TierAsm)
	}
	return ts
}

// TestGoldenAcrossKernelTiersChaos is the cross-tier golden contract
// under every chaos profile: whatever KNN_CHAOS does to the build, and
// whichever kernel tier (KNN_KERNELS equivalent) serves the queries,
// every answer — sequential, batched at several block widths, open and
// closed — must be element-for-element identical to the clean
// generic-tier baseline. This is the acceptance gate for swapping the
// assembly kernels into the serving path.
func TestGoldenAcrossKernelTiersChaos(t *testing.T) {
	const n, d, k, seed = 400, 6, 3, 21
	points := genPoints(n, d, seed)
	queries := queryPoints(points, 160, 33)
	prev := vec.ActiveTier()
	defer vec.SetActiveTier(prev)

	// Baseline: clean build, generic tier.
	vec.SetActiveTier(vec.TierGeneric)
	qs0, err := NewQueryStructure(points, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	wantOpen := make([][]int, len(queries))
	for i, q := range queries {
		if wantOpen[i], err = qs0.CoveringBalls(q); err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
	}
	base := qs0.NewBatcher(1)
	if err := base.RunClosed(queries); err != nil {
		t.Fatal(err)
	}
	wantClosed := make([][]int, len(queries))
	for i := range queries {
		wantClosed[i] = append([]int(nil), base.Result(i)...)
	}

	profiles := map[string]string{"clean": ""}
	for name, spec := range chaosSpecs {
		profiles[name] = spec
	}
	for name, spec := range profiles {
		t.Run(name, func(t *testing.T) {
			if spec != "" {
				t.Setenv("KNN_CHAOS", spec)
			}
			for _, tier := range availableTiers() {
				t.Run(tier.String(), func(t *testing.T) {
					vec.SetActiveTier(tier)
					qs, err := NewQueryStructure(points, k, seed)
					if err != nil {
						t.Fatal(err)
					}
					for i, q := range queries {
						got, err := qs.CoveringBalls(q)
						if err != nil {
							t.Fatalf("query %d: %v", i, err)
						}
						if !sameInts(got, wantOpen[i]) {
							t.Fatalf("sequential query %d: %v, baseline %v", i, got, wantOpen[i])
						}
					}
					// Block widths crossing every scan shape: per-query (1),
					// four-wide remainder (5), pure eight-wide (8), and the
					// widened two-group maximum (16).
					for _, w := range []int{1, 5, 8, 16} {
						bt := qs.NewBatcher(3)
						bt.SetBlockWidth(w)
						if err := bt.Run(queries); err != nil {
							t.Fatal(err)
						}
						for i := range queries {
							if !sameInts(bt.Result(i), wantOpen[i]) {
								t.Fatalf("width=%d open query %d: %v, baseline %v", w, i, bt.Result(i), wantOpen[i])
							}
						}
						if err := bt.RunClosed(queries); err != nil {
							t.Fatal(err)
						}
						for i := range queries {
							if !sameInts(bt.Result(i), wantClosed[i]) {
								t.Fatalf("width=%d closed query %d: %v, baseline %v", w, i, bt.Result(i), wantClosed[i])
							}
						}
					}
				})
			}
		})
	}
}

// TestGoldenKernelTiersAllDims sweeps the asm-covered dimension range:
// at every d the tiers must return identical coverings, sequential and
// through the widest blocked scan.
func TestGoldenKernelTiersAllDims(t *testing.T) {
	prev := vec.ActiveTier()
	defer vec.SetActiveTier(prev)
	for d := 2; d <= 8; d++ {
		points := genPoints(300, d, uint64(40+d))
		queries := queryPoints(points, 120, uint64(50+d))
		vec.SetActiveTier(vec.TierGeneric)
		qs0, err := NewQueryStructure(points, 3, uint64(40+d))
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]int, len(queries))
		for i, q := range queries {
			if want[i], err = qs0.CoveringBalls(q); err != nil {
				t.Fatal(err)
			}
		}
		for _, tier := range availableTiers() {
			vec.SetActiveTier(tier)
			qs, err := NewQueryStructure(points, 3, uint64(40+d))
			if err != nil {
				t.Fatal(err)
			}
			bt := qs.NewBatcher(2)
			bt.SetBlockWidth(16)
			if err := bt.Run(queries); err != nil {
				t.Fatal(err)
			}
			for i, q := range queries {
				got, err := qs.CoveringBalls(q)
				if err != nil {
					t.Fatal(err)
				}
				if !sameInts(got, want[i]) {
					t.Fatalf("d=%d tier=%v query %d: %v, baseline %v", d, tier, i, got, want[i])
				}
				if !sameInts(bt.Result(i), want[i]) {
					t.Fatalf("d=%d tier=%v blocked query %d: %v, baseline %v", d, tier, i, bt.Result(i), want[i])
				}
			}
		}
	}
}

// TestBatcherZeroAllocBlockedWide asserts the widened blocked scan — the
// path that feeds full eight-lane groups to the assembly kernels at
// d >= 4 — still performs zero steady-state allocations per Run at the
// new maximum width.
func TestBatcherZeroAllocBlockedWide(t *testing.T) {
	points := genPoints(1200, 6, 7)
	qs, err := NewQueryStructure(points, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	queries := queryPoints(points, 256, 11)
	for _, w := range []int{8, 16} {
		bt := qs.NewBatcher(4)
		bt.SetBlockWidth(w)
		for warm := 0; warm < 3; warm++ {
			if err := bt.Run(queries); err != nil {
				t.Fatal(err)
			}
		}
		if avg := testing.AllocsPerRun(50, func() { bt.Run(queries) }); avg != 0 {
			t.Fatalf("width=%d: %v allocs per steady-state Run, want 0", w, avg)
		}
	}
}
