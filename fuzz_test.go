package sepdc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"sepdc/internal/nbrsys"
	"sepdc/internal/vec"
)

// pointsFromBytes decodes the fuzzer's raw bytes into a point set: d from
// dRaw, then consecutive 8-byte little-endian float64 coordinates. The
// mapping is total — any byte string yields some input, including ones
// with NaN/Inf coordinates, which the builder must reject (never crash
// on, never silently accept).
func pointsFromBytes(data []byte, dRaw, kRaw uint8) (points [][]float64, k int) {
	d := int(dRaw)%4 + 1
	k = int(kRaw)%5 + 1
	n := len(data) / (8 * d)
	if n > 128 {
		n = 128
	}
	points = make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		p := make([]float64, d)
		for c := 0; c < d; c++ {
			bits := binary.LittleEndian.Uint64(data[(i*d+c)*8:])
			p[c] = math.Float64frombits(bits)
		}
		points = append(points, p)
	}
	return points, k
}

func finitePoints(points [][]float64) bool {
	for _, p := range points {
		for _, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
	}
	return true
}

// FuzzBuildKNNGraph feeds arbitrary byte-derived point sets through the
// divide-and-conquer builders and checks the full exactness contract
// against brute force: same graph, sorted tie-broken lists, no self
// edges, list lengths min(k, n−1).
func FuzzBuildKNNGraph(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	coords := func(vals ...float64) []byte {
		var buf bytes.Buffer
		for _, v := range vals {
			binary.Write(&buf, binary.LittleEndian, v)
		}
		return buf.Bytes()
	}
	f.Add(coords(0, 0, 1, 0, 0, 1, 1, 1), uint8(1), uint8(1))   // unit square, d=2
	f.Add(coords(1, 1, 1, 1, 1, 1), uint8(2), uint8(4))         // coincident, d=3
	f.Add(coords(0, 1, 2, 3, 4, 5, 6, 7), uint8(0), uint8(2))   // line, d=1
	f.Add(coords(0, 0, math.NaN(), 1), uint8(1), uint8(0))      // NaN rejection
	f.Add(coords(math.Inf(1), 0, 1, 2), uint8(1), uint8(0))     // Inf rejection
	f.Add(coords(1e300, -1e300, 1e-300, 0), uint8(1), uint8(3)) // extreme magnitudes
	f.Add(coords(0.5, 0.5, 0.5, 0.25, 0.25, 0.125), uint8(2), uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, dRaw, kRaw uint8) {
		points, k := pointsFromBytes(data, dRaw, kRaw)
		if len(points) == 0 {
			if _, err := BuildKNNGraph(points, k, nil); !errors.Is(err, ErrNoPoints) {
				t.Fatalf("empty input: err = %v, want ErrNoPoints", err)
			}
			return
		}
		if !finitePoints(points) {
			for _, algo := range []Algorithm{Sphere, Hyperplane, KDTree, Brute} {
				if _, err := BuildKNNGraph(points, k, &Options{Algorithm: algo}); !errors.Is(err, ErrNonFiniteCoordinate) {
					t.Fatalf("%s: non-finite input: err = %v, want ErrNonFiniteCoordinate", algo, err)
				}
			}
			return
		}
		truth, err := BuildKNNGraph(points, k, &Options{Algorithm: Brute})
		if err != nil {
			t.Fatalf("brute: %v", err)
		}
		n := len(points)
		wantLen := k
		if n-1 < wantLen {
			wantLen = n - 1
		}
		for _, algo := range []Algorithm{Sphere, Hyperplane} {
			g, err := BuildKNNGraph(points, k, &Options{Algorithm: algo, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			if !Equal(g, truth) {
				t.Fatalf("%s disagrees with brute force on n=%d d=%d k=%d", algo, n, len(points[0]), k)
			}
			for i := 0; i < n; i++ {
				nbrs := g.Neighbors(i)
				if len(nbrs) != wantLen {
					t.Fatalf("%s: point %d has %d neighbors, want %d", algo, i, len(nbrs), wantLen)
				}
				for j, nb := range nbrs {
					if nb.Index == i {
						t.Fatalf("%s: point %d lists itself", algo, i)
					}
					if j > 0 {
						prev := nbrs[j-1]
						if nb.Distance < prev.Distance ||
							(nb.Distance == prev.Distance && nb.Index < prev.Index) {
							t.Fatalf("%s: point %d list not in (distance, index) order", algo, i)
						}
					}
				}
			}
		}
	})
}

// FuzzCoveringBalls feeds arbitrary byte-derived point sets and an
// arbitrary query through the Section-3 search structure and checks the
// answer against the definition: the ascending indices i with
// |q − pᵢ|² < rᵢ², where rᵢ is point i's k-neighborhood radius computed
// independently here. Malformed inputs (no points, non-finite
// coordinates, wrong-dimension queries) must fail with the typed
// sentinels, never crash; batched serving must agree with sequential on
// every input the fuzzer invents.
func FuzzCoveringBalls(f *testing.F) {
	coords := func(vals ...float64) []byte {
		var buf bytes.Buffer
		for _, v := range vals {
			binary.Write(&buf, binary.LittleEndian, v)
		}
		return buf.Bytes()
	}
	f.Add([]byte{}, uint8(0), uint8(0), 0.0, 0.0, 0.0, 0.0)
	f.Add(coords(0, 0, 1, 0, 0, 1, 1, 1), uint8(1), uint8(1), 0.5, 0.5, 0.0, 0.0)  // unit square, center query
	f.Add(coords(1, 1, 1, 1, 1, 1), uint8(2), uint8(4), 1.0, 1.0, 1.0, 0.0)        // coincident points, on-center query
	f.Add(coords(0, 1, 2, 3, 4, 5, 6, 7), uint8(0), uint8(2), 3.5, 0.0, 0.0, 0.0)  // line, d=1
	f.Add(coords(0, 0, 1, 0, 0, 1), uint8(1), uint8(0), math.NaN(), 0.0, 0.0, 0.0) // non-finite query
	f.Add(coords(1e300, -1e300, 1e-300, 0), uint8(1), uint8(3), 1e300, 0.0, 0.0, 0.0)
	f.Add(coords(0, 0, math.Inf(1), 1), uint8(1), uint8(0), 0.0, 0.0, 0.0, 0.0) // non-finite points

	f.Fuzz(func(t *testing.T, data []byte, dRaw, kRaw uint8, q0, q1, q2, q3 float64) {
		points, k := pointsFromBytes(data, dRaw, kRaw)
		if len(points) == 0 {
			if _, err := NewQueryStructure(points, k, 1); !errors.Is(err, ErrNoPoints) {
				t.Fatalf("empty input: err = %v, want ErrNoPoints", err)
			}
			return
		}
		if !finitePoints(points) {
			if _, err := NewQueryStructure(points, k, 1); !errors.Is(err, ErrNonFiniteCoordinate) {
				t.Fatalf("non-finite input: err = %v, want ErrNonFiniteCoordinate", err)
			}
			return
		}
		// Ground truth scaffolding: recompute the k-neighborhood system
		// independently of the structure under test.
		centers := make([]vec.Vec, len(points))
		for i, p := range points {
			centers[i] = p
		}
		sys := nbrsys.KNeighborhood(centers, k)
		radiiFinite := true
		for _, r := range sys.Radii {
			if math.IsInf(r, 0) || math.IsNaN(r) {
				radiiFinite = false
			}
		}
		qs, err := NewQueryStructure(points, k, 1)
		if err != nil {
			if !radiiFinite {
				// Finite points can still be far enough apart that |p−q|²
				// overflows to +Inf; the neighborhood system is rejected,
				// with an error, not a crash — acceptable.
				return
			}
			t.Fatalf("build on valid input: %v", err)
		}
		d := len(points[0])
		q := []float64{q0, q1, q2, q3}[:d]

		// Wrong-dimension probe: always rejectable (d ≤ 4 < 5).
		if _, err := qs.CoveringBalls(make([]float64, d+1)); !errors.Is(err, ErrDimensionMismatch) {
			t.Fatalf("dimension d+1: err = %v, want ErrDimensionMismatch", err)
		}
		if !finitePoints([][]float64{q}) {
			if _, err := qs.CoveringBalls(q); !errors.Is(err, ErrNonFiniteCoordinate) {
				t.Fatalf("non-finite query: err = %v, want ErrNonFiniteCoordinate", err)
			}
			return
		}

		// Ground truth by definition: scan every ball of the independent
		// system with the same open predicate.
		var want []int
		for i, c := range sys.Centers {
			if vec.Dist2Flat(q, c) < sys.Radii[i]*sys.Radii[i] {
				want = append(want, i)
			}
		}
		got, err := qs.CoveringBalls(q)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("CoveringBalls: %v, brute scan %v (n=%d d=%d k=%d)", got, want, len(points), d, k)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("CoveringBalls: %v, brute scan %v", got, want)
			}
		}
		rows, err := qs.CoveringBallsBatch([][]float64{q, q})
		if err != nil {
			t.Fatalf("batch: %v", err)
		}
		for _, row := range rows {
			if len(row) != len(got) {
				t.Fatalf("batch row %v, sequential %v", row, got)
			}
			for i := range row {
				if row[i] != got[i] {
					t.Fatalf("batch row %v, sequential %v", row, got)
				}
			}
		}
	})
}

// FuzzSerializeRoundTrip attacks the graph decoder two ways at once: the
// raw fuzz bytes go straight into DecodeGraph (which must reject garbage
// with an error, never panic or over-allocate), and the same bytes,
// reinterpreted as points, drive a build → Encode → Decode → Equal round
// trip.
func FuzzSerializeRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte("not a gob stream"), uint8(1), uint8(1))
	// A well-formed encoding as a seed so the fuzzer explores mutations of
	// real frames, not just the error path.
	{
		g, err := BuildKNNGraph([][]float64{{0, 0}, {1, 0}, {0, 1}, {2, 2}}, 2, nil)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), uint8(1), uint8(1))
	}

	f.Fuzz(func(t *testing.T, data []byte, dRaw, kRaw uint8) {
		// Garbage in, error out — decoding arbitrary bytes must be safe.
		if g, err := DecodeGraph(bytes.NewReader(data)); err == nil {
			// The rare accidentally-valid frame must at least round-trip.
			var buf bytes.Buffer
			if err := g.Encode(&buf); err != nil {
				t.Fatalf("re-encode of decoded graph: %v", err)
			}
			g2, err := DecodeGraph(&buf)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !Equal(g, g2) {
				t.Fatal("decoded graph does not survive a round trip")
			}
		}

		points, k := pointsFromBytes(data, dRaw, kRaw)
		if len(points) == 0 || !finitePoints(points) {
			return
		}
		g, err := BuildKNNGraph(points, k, nil)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		rt, err := DecodeGraph(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !Equal(g, rt) {
			t.Fatal("graph does not survive Encode/DecodeGraph round trip")
		}
		if rt.K() != g.K() || rt.NumPoints() != g.NumPoints() || rt.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed graph shape")
		}
	})
}
